package experiment

import (
	"fmt"
	"strings"
	"time"

	"adsim/internal/constraint"
	"adsim/internal/faultinject"
	"adsim/internal/pipeline"
	"adsim/internal/scenario"
	"adsim/internal/scene"
)

func init() { register("scenarios", runScenarios) }

// The scenarios study sweeps the committed scenario-program library: every
// program is compiled (timeline onto the scene, fault rules onto the
// injector), driven through the native pipeline under virtual deadline
// enforcement, and folded into a per-scenario constraint.Scorecard. Each
// program then replays under the same seed; the deterministic scorecard
// fields (frames, errors, degraded count) must come back identical — the
// executable form of the replayability contract the scenario layer makes.

// scenariosParams sizes one sweep execution.
type scenariosParams struct {
	// Frames per program run. Programs phase over tens of seconds at the
	// scene rate, so more frames reach deeper into each timeline.
	Frames int
	Seed   int64
}

// ScenarioOutcome is one library program's measured scorecard plus the
// outcome of its replay check.
type ScenarioOutcome struct {
	Report constraint.ScorecardReport
	// ReplayOK reports that a second run of the same program and seed
	// reproduced the deterministic scorecard fields (frames delivered,
	// errors, degraded count).
	ReplayOK bool
}

// ScenariosResult is the rendered library sweep.
type ScenariosResult struct {
	Frames int
	Seed   int64
	Runs   []ScenarioOutcome
}

func (ScenariosResult) ID() string { return "scenarios" }

// Pass is the sweep's acceptance bar: the whole library ran (≥ 6 programs),
// every program delivered all its frames with zero errored frames, every
// replay reproduced the deterministic fields, and at least one program
// exercised the degraded path (the library includes fault-bearing
// programs precisely so the sweep is not a fair-weather test).
func (r ScenariosResult) Pass() bool {
	if len(r.Runs) < 6 {
		return false
	}
	degraded := 0
	for _, run := range r.Runs {
		if !run.ReplayOK || run.Report.Errors > 0 || run.Report.Frames != r.Frames {
			return false
		}
		degraded += run.Report.Degraded
	}
	return degraded > 0
}

func (r ScenariosResult) Render() string {
	var b strings.Builder
	b.WriteString(header("scenarios", "Scenario-program library sweep, one constraint scorecard per program"))
	fmt.Fprintf(&b, "%d frames per program, seed %d, virtual deadline enforcement (budget %v)\n\n",
		r.Frames, r.Seed, pipeline.DefaultFrameBudget)
	for _, run := range r.Runs {
		b.WriteString(run.Report.String())
		replay := "replay IDENTICAL"
		if !run.ReplayOK {
			replay = "replay DIVERGED"
		}
		fmt.Fprintf(&b, "  %s\n\n", replay)
	}
	verdict := "FAIL"
	if r.Pass() {
		verdict = "PASS"
	}
	fmt.Fprintf(&b, "scenario-sweep %s: %d programs, %d frames each, all replays identical\n",
		verdict, len(r.Runs), r.Frames)
	return b.String()
}

func runScenarios(opts Options) (Result, error) {
	// NativeFrames is the shared native-execution sizing knob; the sweep
	// scales it up so the runs reach past each program's first phase.
	frames := 20 * opts.NativeFrames
	if frames < 120 {
		frames = 120
	}
	return runScenariosStudy(scenariosParams{Frames: frames, Seed: opts.Seed})
}

func runScenariosStudy(p scenariosParams) (ScenariosResult, error) {
	res := ScenariosResult{Frames: p.Frames, Seed: p.Seed}
	for _, name := range scenario.Library() {
		first, err := runScenarioCase(name, p)
		if err != nil {
			return res, fmt.Errorf("scenario %s: %w", name, err)
		}
		second, err := runScenarioCase(name, p)
		if err != nil {
			return res, fmt.Errorf("scenario %s (replay): %w", name, err)
		}
		res.Runs = append(res.Runs, ScenarioOutcome{
			Report: first,
			// Wall latencies differ run to run; the frame, error and
			// degraded counts are pure functions of (program, seed) under
			// virtual enforcement and must not.
			ReplayOK: first.Frames == second.Frames &&
				first.Errors == second.Errors &&
				first.Degraded == second.Degraded,
		})
	}
	return res, nil
}

// runScenarioCase compiles one library program and drives it through a
// sequential Step loop, folding every delivered frame into a scorecard.
func runScenarioCase(name string, p scenariosParams) (constraint.ScorecardReport, error) {
	prog, err := scenario.Load(name)
	if err != nil {
		return constraint.ScorecardReport{}, err
	}
	cfg := pipeline.DefaultConfig(scene.Urban)
	cfg.Scene.Width, cfg.Scene.Height = 384, 192
	cfg.Scene.Seed = p.Seed
	cfg.SurveyFrames = 20
	cfg.Detect.RunDNN = false
	cfg.Track.RunDNN = false
	cfg.Scene = prog.Configure(cfg.Scene)
	cfg.Deadline = pipeline.DeadlinePolicy{Enforce: true, Virtual: true}
	inj, err := faultinject.New(faultinject.FromProgram(prog, p.Seed))
	if err != nil {
		return constraint.ScorecardReport{}, err
	}
	cfg.Inject = inj.Stage

	pl, err := pipeline.NewNative(cfg)
	if err != nil {
		return constraint.ScorecardReport{}, err
	}
	card := constraint.NewScorecard(name, p.Seed, cfg.Scene.FPS)
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	for i := 0; i < p.Frames; i++ {
		res, err := pl.Step()
		if err != nil {
			// Injected hard faults are part of the scenario: score them,
			// keep driving.
			card.ObserveError()
			continue
		}
		card.Observe(ms(res.Timing.E2E), map[string]float64{
			"DET":     ms(res.Timing.Det),
			"TRA":     ms(res.Timing.Tra),
			"LOC":     ms(res.Timing.Loc),
			"FUSION":  ms(res.Timing.Fusion),
			"MISPLAN": ms(res.Timing.MisPlan),
			"MOTPLAN": ms(res.Timing.MotPlan),
			"CONTROL": ms(res.Timing.Control),
		}, res.Degraded.Any())
	}
	pl.Drain()
	return card.Report(), nil
}
