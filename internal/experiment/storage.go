package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/power"
	"adsim/internal/scene"
	"adsim/internal/slam"
)

func init() { register("storage", runStorage) }

// USPublicRoadKm is the length of the US public road network the paper's
// storage constraint references (FHWA Highway Statistics 2015: ~4.15
// million miles).
const USPublicRoadKm = 6.68e6

// StorageResult is an extension experiment (not a paper figure): it
// measures the byte density of the reproduction's own prior map — built by
// the real SLAM engine from a surveyed synthetic route — and extrapolates
// it to the US road network, cross-checking the paper's 41 TB storage
// constraint from first principles.
//
// The extrapolation basis is the serialized (ADM1 on-disk) density, the
// same figure `admap -build` prints, so the two tools quote one "US TB"
// number; MemBytes records the in-memory resident footprint for contrast
// (it is what the shard cache budgets against, not a storage figure).
type StorageResult struct {
	SurveyMeters    float64
	Keyframes       int
	MapBytes        int64   // serialized size: the extrapolation basis
	MemBytes        int64   // in-memory footprint (slam.PriorMap.StorageBytes)
	BytesPerMeter   float64 // serialized density
	USExtrapolation float64 // TB for the whole US road network
	PaperTB         float64
	StoragePowerW   float64
}

func (StorageResult) ID() string { return "storage" }

func (r StorageResult) Render() string {
	var b strings.Builder
	b.WriteString(header("storage", "Prior-map storage extrapolation (extension)"))
	fmt.Fprintf(&b, "surveyed route        %8.0f m (%d keyframes)\n", r.SurveyMeters, r.Keyframes)
	fmt.Fprintf(&b, "map size (serialized) %8.1f KB (%.1f KB per meter)\n",
		float64(r.MapBytes)/1024, r.BytesPerMeter/1024)
	fmt.Fprintf(&b, "resident footprint    %8.1f KB in memory\n", float64(r.MemBytes)/1024)
	fmt.Fprintf(&b, "US road network       %8.2e km\n", USPublicRoadKm)
	fmt.Fprintf(&b, "extrapolated US map   %8.1f TB\n", r.USExtrapolation)
	fmt.Fprintf(&b, "paper's US map        %8.1f TB\n", r.PaperTB)
	fmt.Fprintf(&b, "storage power (paper) %8.1f W\n", r.StoragePowerW)
	b.WriteString("\nOur from-scratch ORB keyframe map lands within an order of magnitude of\n")
	b.WriteString("the paper's 41 TB figure, independently supporting its storage constraint\n")
	b.WriteString("(tens of TB must ride on the vehicle; see slam.ShardStore for how the\n")
	b.WriteString("engine bounds the resident slice of such a map).\n")
	return b.String()
}

func runStorage(opts Options) (Result, error) {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 640, 320
	cfg.Seed = opts.Seed
	gen, err := scene.New(cfg)
	if err != nil {
		return nil, err
	}
	m := slam.NewPriorMap()
	eng, err := slam.NewEngine(slam.DefaultConfig(), m)
	if err != nil {
		return nil, err
	}
	frames := 80
	var meters float64
	for i := 0; i < frames; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
		meters = f.EgoPose.Z
	}
	if meters <= 0 || m.Len() == 0 {
		return nil, fmt.Errorf("storage: survey produced no map")
	}
	bytesPerMeter := float64(m.SerializedBytes()) / meters
	return StorageResult{
		SurveyMeters:    meters,
		Keyframes:       m.Len(),
		MapBytes:        m.SerializedBytes(),
		MemBytes:        m.StorageBytes(),
		BytesPerMeter:   bytesPerMeter,
		USExtrapolation: bytesPerMeter * USPublicRoadKm * 1000 / 1e12,
		PaperTB:         power.USMapTB,
		StoragePowerW:   power.StoragePower(power.USMapTB),
	}, nil
}
