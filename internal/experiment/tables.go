package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
)

func init() {
	register("table1", runTable1)
	register("table2", runTable2)
	register("table3", runTable3)
}

// Table1Result reproduces the paper's industry survey.
type Table1Result struct {
	Rows []accel.IndustrySurveyRow
}

func (Table1Result) ID() string { return "table1" }

func (r Table1Result) Render() string {
	var b strings.Builder
	b.WriteString(header("table1", "Autonomous driving vehicles under experimentation in industry"))
	fmt.Fprintf(&b, "%-14s %-12s %-14s %s\n", "Manufacturer", "Automation", "Platform", "Sensors")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-12s %-14s %s\n", row.Manufacturer, row.Automation, row.ComputePlat, row.Sensors)
	}
	return b.String()
}

func runTable1(Options) (Result, error) {
	return Table1Result{Rows: accel.Table1()}, nil
}

// Table2Result reproduces the platform specification table.
type Table2Result struct {
	Specs []accel.Spec
}

func (Table2Result) ID() string { return "table2" }

func (r Table2Result) Render() string {
	var b strings.Builder
	b.WriteString(header("table2", "Computing platform specifications"))
	fmt.Fprintf(&b, "%-9s %-36s %9s %8s %10s %10s\n",
		"Platform", "Model", "Freq", "Cores", "Memory", "MemBW")
	for _, s := range r.Specs {
		cores := "-"
		if s.Cores > 0 {
			cores = fmt.Sprintf("%d", s.Cores)
		}
		mem := "-"
		if s.MemGB > 0 {
			mem = fmt.Sprintf("%.4g GB", s.MemGB)
		}
		bw := "-"
		if s.MemBWGBs > 0 {
			bw = fmt.Sprintf("%.1f GB/s", s.MemBWGBs)
		}
		fmt.Fprintf(&b, "%-9s %-36s %6.2f GHz %8s %10s %10s\n",
			s.Platform, s.Model, s.FreqGHz, cores, mem, bw)
	}
	return b.String()
}

func runTable2(Options) (Result, error) {
	return Table2Result{Specs: accel.Table2()}, nil
}

// Table3Result reproduces the FE ASIC specification.
type Table3Result struct {
	Spec accel.FEASICSpec
}

func (Table3Result) ID() string { return "table3" }

func (r Table3Result) Render() string {
	var b strings.Builder
	b.WriteString(header("table3", "Feature Extraction (FE) ASIC specifications"))
	fmt.Fprintf(&b, "Technology  %s\n", r.Spec.Technology)
	fmt.Fprintf(&b, "Area        %.1f um^2\n", r.Spec.AreaUm2)
	fmt.Fprintf(&b, "Clock Rate  %.1f GHz (%.2f ns/cycle)\n", r.Spec.ClockGHz, 1/r.Spec.ClockGHz)
	fmt.Fprintf(&b, "Power       %.2f mW\n", r.Spec.PowerMilliW)
	return b.String()
}

func runTable3(Options) (Result, error) {
	return Table3Result{Spec: accel.Table3()}, nil
}
