package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/power"
)

func init() { register("fig2", runFig2) }

// Fig2Row is one bar pair of Figure 2: an engine preset's power and the
// resulting driving-range reduction, computed for the computing engine
// alone and for the entire system (storage + cooling) in aggregate.
type Fig2Row struct {
	Config          string
	ComputeW        float64
	ComputeRangePct float64
	SystemW         float64
	SystemRangePct  float64
}

// Fig2Result reproduces Figure 2 (driving range reduction on a Chevy Bolt).
type Fig2Result struct {
	Rows []Fig2Row
}

func (Fig2Result) ID() string { return "fig2" }

func (r Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString(header("fig2", "Driving range reduction vs. added power (Chevy Bolt)"))
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s\n",
		"Config", "ComputeW", "Range-%", "SystemW", "Range-%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12.0f %12.1f %12.0f %12.1f\n",
			row.Config, row.ComputeW, row.ComputeRangePct, row.SystemW, row.SystemRangePct)
	}
	b.WriteString("\n(compute engine alone on the left columns; entire system — storage for\n")
	b.WriteString("the 41 TB US prior map plus COP-1.3 cooling — on the right)\n")
	return b.String()
}

// fig2Presets are the paper's computing-engine configurations: host CPU
// (250 W server) plus accelerator boards.
func fig2Presets() []struct {
	Name     string
	ComputeW float64
} {
	return []struct {
		Name     string
		ComputeW float64
	}{
		{"CPU+FPGA", 250 + 40},
		{"CPU+GPU", 250 + 250},
		{"CPU+3GPUs", 250 + 3*250}, // the paper's ~1 kW full-utilization point
	}
}

func runFig2(Options) (Result, error) {
	var rows []Fig2Row
	for _, p := range fig2Presets() {
		sys := power.System(p.ComputeW, power.USMapTB)
		rows = append(rows, Fig2Row{
			Config:          p.Name,
			ComputeW:        p.ComputeW,
			ComputeRangePct: 100 * power.RangeReduction(p.ComputeW),
			SystemW:         sys.Total(),
			SystemRangePct:  100 * power.RangeReduction(sys.Total()),
		})
	}
	return Fig2Result{Rows: rows}, nil
}
