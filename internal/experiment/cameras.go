package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/pipeline"
	"adsim/internal/stats"
)

func init() { register("ablate-cameras", runAblateCameras) }

// AblateCamerasRow is one (configuration, camera count) vehicle-level tail.
type AblateCamerasRow struct {
	Assignment pipeline.Assignment
	Cameras    int
	TailMs     float64
	// InflationPct is the tail increase relative to the single-camera
	// tail of the same configuration.
	InflationPct float64
}

// AblateCamerasResult is an extension experiment beyond the paper: the
// end-to-end system has eight cameras, each with a computing-engine
// replica, and a frame is only fully processed when EVERY camera's replica
// finishes — the vehicle-level latency is the max over replicas. On
// platforms with execution jitter (CPU, GPU) the max-statistic inflates
// the tail as cameras are added; fixed-latency FPGA/ASIC pipelines pay no
// such penalty, which further strengthens the paper's case for
// deterministic accelerators in multi-sensor systems.
type AblateCamerasResult struct {
	Rows []AblateCamerasRow
}

func (AblateCamerasResult) ID() string { return "ablate-cameras" }

func (r AblateCamerasResult) Render() string {
	var b strings.Builder
	b.WriteString(header("ablate-cameras", "Vehicle-level tail vs. camera count (extension)"))
	fmt.Fprintf(&b, "%-18s %8s %12s %12s\n", "DET/TRA/LOC", "cameras", "P99.99 ms", "inflation")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %8d %12.1f %11.1f%%\n",
			row.Assignment.Short(), row.Cameras, row.TailMs, row.InflationPct)
	}
	b.WriteString("\nA frame is done when all camera replicas finish (vehicle latency =\n")
	b.WriteString("max over replicas). Platforms with execution jitter pay a growing\n")
	b.WriteString("percent-level tail penalty per camera (largest on the CPU, whose\n")
	b.WriteString("jitter is widest); fixed-latency ASIC pipelines pay none — another\n")
	b.WriteString("reason deterministic accelerators suit multi-sensor vehicles.\n")
	return b.String()
}

func runAblateCameras(opts Options) (Result, error) {
	m := accel.NewModel()
	// Configurations chosen to expose the effect: the critical path must
	// be jitter-dominated (LOC on ASIC keeps the constant relocalization
	// spike from capping the tail).
	configs := []pipeline.Assignment{
		{Det: accel.CPU, Tra: accel.CPU, Loc: accel.ASIC},
		{Det: accel.GPU, Tra: accel.GPU, Loc: accel.ASIC},
		pipeline.Uniform(accel.ASIC),
		{Det: accel.GPU, Tra: accel.ASIC, Loc: accel.ASIC},
	}
	cameraCounts := []int{1, 2, 4, 8}
	var rows []AblateCamerasRow
	for ci, a := range configs {
		var singleTail float64
		for _, n := range cameraCounts {
			rng := stats.NewRNG(opts.Seed + int64(ci))
			d := stats.NewDistribution(opts.Frames)
			for f := 0; f < opts.Frames; f++ {
				// Per-camera replicas are independent engines; within one
				// camera, co-located engines share their platform noise.
				vehicle := 0.0
				for cam := 0; cam < n; cam++ {
					var z [accel.NumPlatforms]float64
					for p := range z {
						z[p] = rng.Normal(0, 1)
					}
					det := m.SampleShared(a.Det, accel.DET, accel.ResKITTI, z[a.Det], rng)
					tra := m.SampleShared(a.Tra, accel.TRA, accel.ResKITTI, z[a.Tra], rng)
					loc := m.SampleShared(a.Loc, accel.LOC, accel.ResKITTI, z[a.Loc], rng)
					e2e := det + tra
					if loc > e2e {
						e2e = loc
					}
					if e2e > vehicle {
						vehicle = e2e
					}
				}
				d.Add(vehicle + m.SampleFusion(rng) + m.SampleMotPlan(rng))
			}
			tail := d.P9999()
			if n == 1 {
				singleTail = tail
			}
			rows = append(rows, AblateCamerasRow{
				Assignment:   a,
				Cameras:      n,
				TailMs:       tail,
				InflationPct: 100 * (tail - singleTail) / singleTail,
			})
		}
	}
	return AblateCamerasResult{Rows: rows}, nil
}
