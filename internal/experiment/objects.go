package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/constraint"
	"adsim/internal/pipeline"
	"adsim/internal/stats"
)

func init() { register("ablate-objects", runAblateObjects) }

// AblateObjectsRow is one (configuration, tracked-object count) tail.
type AblateObjectsRow struct {
	Assignment pipeline.Assignment
	Objects    int
	TailMs     float64
	MeetsTail  bool
}

// AblateObjectsResult is an extension experiment: the paper reports TRA
// latency per GOTURN inference, but a frame runs one inference per tracked
// object (its own system caps the tracker pool at the paper's unstated
// size). Scaling the per-frame TRA cost by the tracked-object count shows
// which platform assignments survive realistic traffic density: GPU-only
// TRA blows the 100 ms budget somewhere around a dozen objects, while the
// EIE-style FC ASIC (1.8 ms per inference) sustains dense scenes — a
// sizing insight implicit in the paper's accelerator choice.
type AblateObjectsResult struct {
	Rows []AblateObjectsRow
}

func (AblateObjectsResult) ID() string { return "ablate-objects" }

func (r AblateObjectsResult) Render() string {
	var b strings.Builder
	b.WriteString(header("ablate-objects", "End-to-end tail vs. tracked-object count (extension)"))
	fmt.Fprintf(&b, "%-18s %8s %12s %10s\n", "DET/TRA/LOC", "objects", "P99.99 ms", "<=100ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %8d %12.1f %10v\n",
			row.Assignment.Short(), row.Objects, row.TailMs, row.MeetsTail)
	}
	b.WriteString("\nTRA runs one GOTURN inference per tracked object per frame; DET and\n")
	b.WriteString("LOC are per-frame. Dense traffic pushes GPU-tracked configurations\n")
	b.WriteString("over the 100 ms deadline; the FC ASIC holds it across the sweep.\n")
	return b.String()
}

// MaxObjectsUnderDeadline returns the largest object count in the sweep
// where the assignment still meets the tail constraint (0 if none).
func (r AblateObjectsResult) MaxObjectsUnderDeadline(a pipeline.Assignment) int {
	best := 0
	for _, row := range r.Rows {
		if row.Assignment == a && row.MeetsTail && row.Objects > best {
			best = row.Objects
		}
	}
	return best
}

func runAblateObjects(opts Options) (Result, error) {
	m := accel.NewModel()
	configs := []pipeline.Assignment{
		{Det: accel.GPU, Tra: accel.GPU, Loc: accel.ASIC},
		{Det: accel.GPU, Tra: accel.ASIC, Loc: accel.ASIC},
		pipeline.Uniform(accel.ASIC),
	}
	counts := []int{1, 4, 8, 16, 32}
	var rows []AblateObjectsRow
	for ci, a := range configs {
		for _, objects := range counts {
			rng := stats.NewRNG(opts.Seed + int64(ci))
			d := stats.NewDistribution(opts.Frames)
			for f := 0; f < opts.Frames; f++ {
				var z [accel.NumPlatforms]float64
				for p := range z {
					z[p] = rng.Normal(0, 1)
				}
				det := m.SampleShared(a.Det, accel.DET, accel.ResKITTI, z[a.Det], rng)
				loc := m.SampleShared(a.Loc, accel.LOC, accel.ResKITTI, z[a.Loc], rng)
				tra := 0.0
				for o := 0; o < objects; o++ {
					tra += m.SampleShared(a.Tra, accel.TRA, accel.ResKITTI, z[a.Tra], rng)
				}
				e2e := det + tra
				if loc > e2e {
					e2e = loc
				}
				d.Add(e2e + m.SampleFusion(rng) + m.SampleMotPlan(rng))
			}
			tail := d.P9999()
			rows = append(rows, AblateObjectsRow{
				Assignment: a,
				Objects:    objects,
				TailMs:     tail,
				MeetsTail:  tail <= constraint.MaxTailLatencyMs,
			})
		}
	}
	return AblateObjectsResult{Rows: rows}, nil
}
