package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/detect"
	"adsim/internal/img"
	"adsim/internal/scene"
)

func init() { register("accuracy", runAccuracy) }

// AccuracyRow is one resolution's functional detection quality.
type AccuracyRow struct {
	Res accel.Resolution
	// Recall over ALL ground-truth objects in view (IoU ≥ 0.5 against a
	// detection). The truth set is identical across resolutions (same
	// world), so recall is directly comparable: low resolutions lose the
	// distant objects to sub-pixel extents.
	Recall float64
	// MaxRangeM is the depth of the farthest object detected (m) — higher
	// resolutions resolve more distant objects.
	MaxRangeM float64
	// Truths is the number of ground-truth objects evaluated.
	Truths int
}

// AccuracyResult is an extension experiment that measures the premise of
// the paper's Fig 13 ("increasing camera resolution can significantly
// boost the accuracy"): the same scenario rendered at each sweep
// resolution, scored with the reference detector against pixel-exact
// ground truth. Detection range grows with resolution — distant vehicles
// subtend too few pixels at HHD to detect at all — which is exactly why
// the paper asks whether the platforms can sustain higher resolutions.
type AccuracyResult struct {
	Rows []AccuracyRow
}

func (AccuracyResult) ID() string { return "accuracy" }

func (r AccuracyResult) Render() string {
	var b strings.Builder
	b.WriteString(header("accuracy", "Detection quality vs. camera resolution (extension)"))
	fmt.Fprintf(&b, "%-14s %10s %12s %10s\n", "Resolution", "recall", "max range", "truths")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %9.1f%% %10.1f m %10d\n",
			row.Res.Name, 100*row.Recall, row.MaxRangeM, row.Truths)
	}
	b.WriteString("\nHigher resolutions resolve more distant objects (a ~20x20-pixel\n")
	b.WriteString("detection floor reaches further in meters), improving recall until the\n")
	b.WriteString("scenario's object distribution saturates — the accuracy incentive\n")
	b.WriteString("behind the paper's Fig 13 question of sustaining QHD compute.\n")
	return b.String()
}

func runAccuracy(opts Options) (Result, error) {
	var rows []AccuracyRow
	for _, res := range accel.SweepResolutions() {
		cfg := scene.DefaultConfig(scene.Urban)
		cfg.Width, cfg.Height = res.W, res.H
		cfg.Seed = opts.Seed
		gen, err := scene.New(cfg)
		if err != nil {
			return nil, err
		}
		// Real detection networks cannot resolve objects below roughly
		// 20x20 input pixels (the reason higher-resolution cameras buy
		// accuracy at range); the reference detector models that with a
		// fixed minimum box area in frame pixels.
		det, err := detect.New(detect.Config{
			InputSize:     64,
			ConfThreshold: 0.3,
			NMSThreshold:  0.45,
			MinBoxPixels:  400,
			RunDNN:        false, // functional quality only
		})
		if err != nil {
			return nil, err
		}
		row := AccuracyRow{Res: res}
		matched := 0
		for i := 0; i < opts.NativeFrames; i++ {
			frame := gen.Step()
			dets := det.Detect(frame.Image)
			for _, truth := range frame.Truth {
				row.Truths++
				if bestIoU(dets, truth.Box) >= 0.5 {
					matched++
					if truth.Depth > row.MaxRangeM {
						row.MaxRangeM = truth.Depth
					}
				}
			}
		}
		if row.Truths > 0 {
			row.Recall = float64(matched) / float64(row.Truths)
		}
		rows = append(rows, row)
	}
	return AccuracyResult{Rows: rows}, nil
}

func bestIoU(dets []detect.Detection, truth img.Rect) float64 {
	best := 0.0
	for _, d := range dets {
		if iou := d.Box.IoU(truth); iou > best {
			best = iou
		}
	}
	return best
}
