package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
)

func init() { register("energy", runEnergy) }

// EnergyRow is one (platform, engine) energy-per-frame figure.
type EnergyRow struct {
	Platform accel.Platform
	Engine   accel.Engine
	// JoulesPerFrame = board power × mean frame latency.
	JoulesPerFrame float64
}

// EnergyResult is an extension experiment: energy per processed frame
// (power × latency), the metric that reveals a subtlety the paper's
// separate latency and power figures imply but never plot — the 200 MHz
// Eyeriss-style DET ASIC is so much slower than the GPU that its 7x power
// advantage does NOT translate into an energy win on DET, while the TRA
// and LOC ASICs win energy by one to three orders of magnitude.
type EnergyResult struct {
	Rows []EnergyRow
}

func (EnergyResult) ID() string { return "energy" }

func (r EnergyResult) Render() string {
	var b strings.Builder
	b.WriteString(header("energy", "Energy per frame = power x latency (extension)"))
	fmt.Fprintf(&b, "%-9s", "")
	for _, e := range accel.Engines() {
		fmt.Fprintf(&b, " %14s", e.String())
	}
	b.WriteString("\n")
	for _, p := range accel.Platforms() {
		fmt.Fprintf(&b, "%-9s", p.String())
		for _, e := range accel.Engines() {
			fmt.Fprintf(&b, " %11.4f J", r.joules(p, e))
		}
		b.WriteString("\n")
	}
	b.WriteString("\nDET: the GPU narrowly beats the 200 MHz CNN ASIC on energy (speed wins);\n")
	b.WriteString("TRA/LOC: the FC and FE ASICs win energy by 1-3 orders of magnitude.\n")
	b.WriteString("CPUs lose on every axis at once.\n")
	return b.String()
}

func (r EnergyResult) joules(p accel.Platform, e accel.Engine) float64 {
	for _, row := range r.Rows {
		if row.Platform == p && row.Engine == e {
			return row.JoulesPerFrame
		}
	}
	return 0
}

func runEnergy(Options) (Result, error) {
	m := accel.NewModel()
	var rows []EnergyRow
	for _, p := range accel.Platforms() {
		for _, e := range accel.Engines() {
			rows = append(rows, EnergyRow{
				Platform:       p,
				Engine:         e,
				JoulesPerFrame: m.Power(p, e) * m.MeanLatency(p, e, accel.ResKITTI) / 1000,
			})
		}
	}
	return EnergyResult{Rows: rows}, nil
}
