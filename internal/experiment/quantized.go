package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/pipeline"
	"adsim/internal/scene"
	"adsim/internal/telemetry"
)

func init() { register("quantized", runQuantized) }

// QuantizedRow compares one DNN engine's native float32 and int8 execution,
// alongside the analytic platform model's CPU-vs-ASIC latencies for the
// paper-scale workload.
type QuantizedRow struct {
	Engine  string
	FloatMs float64 // native float32 DNN ms per executed frame
	Int8Ms  float64 // native int8 DNN ms per executed frame
	Speedup float64 // FloatMs / Int8Ms
	CPUMs   float64 // analytic paper-scale CPU latency (ms)
	ASICMs  float64 // analytic paper-scale ASIC latency (ms)
}

// QuantizedResult sets the native int8 inference path against the analytic
// accelerator model: the same networks run through tensor.Conv2DInt8 /
// FullyConnectedInt8 instead of the float32 kernels, and the measured
// speedup is compared with the CPU→ASIC gap the calibrated model predicts
// for EIE/Eyeriss-class quantized accelerators.
type QuantizedResult struct {
	Rows   []QuantizedRow
	Frames int
}

func (QuantizedResult) ID() string { return "quantized" }

func (r QuantizedResult) Render() string {
	var b strings.Builder
	b.WriteString(header("quantized", "Native int8 vs float32 DNN execution, against the analytic ASIC gap"))
	fmt.Fprintf(&b, "%-8s %12s %12s %9s %14s %14s %9s\n",
		"Engine", "float32-ms", "int8-ms", "native-x", "model-CPU-ms", "model-ASIC-ms", "model-x")
	for _, row := range r.Rows {
		modelX := 0.0
		if row.ASICMs > 0 {
			modelX = row.CPUMs / row.ASICMs
		}
		fmt.Fprintf(&b, "%-8s %12.3f %12.3f %8.2fx %14.1f %14.2f %8.0fx\n",
			row.Engine, row.FloatMs, row.Int8Ms, row.Speedup, row.CPUMs, row.ASICMs, modelX)
	}
	fmt.Fprintf(&b, "\n(native: tiny-scale networks over %d frames, int8 on scalar integer\n", r.Frames)
	b.WriteString("units — the software win comes from narrower data, not wide SIMD;\n")
	b.WriteString("the analytic columns are the paper-scale calibrated model, where the\n")
	b.WriteString("ASIC's dedicated quantized datapath opens the full gap)\n")
	return b.String()
}

func runQuantized(opts Options) (Result, error) {
	// One native instrumented run per mode; quantization is flipped through
	// the engine configs, everything else identical (same scenario seed).
	run := func(quantized bool) (detMs, traMs float64, err error) {
		cfg := pipeline.DefaultConfig(scene.Urban)
		cfg.Scene.Width, cfg.Scene.Height = 512, 256
		cfg.SurveyFrames = 20
		cfg.Detect.Quantized = quantized
		cfg.Track.Quantized = quantized
		col := telemetry.NewCollector(0)
		cfg.Telemetry = col
		p, err := pipeline.NewNative(cfg)
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < opts.NativeFrames; i++ {
			if _, err := p.Step(); err != nil {
				return 0, 0, err
			}
		}
		n := float64(opts.NativeFrames)
		return col.ExecSumMs("DET/dnn") / n, col.ExecSumMs("TRA/dnn") / n, nil
	}
	fDet, fTra, err := run(false)
	if err != nil {
		return nil, err
	}
	qDet, qTra, err := run(true)
	if err != nil {
		return nil, err
	}
	speed := func(f, q float64) float64 {
		if q <= 0 {
			return 0
		}
		return f / q
	}
	m := accel.NewModel()
	rows := []QuantizedRow{
		{Engine: "DET", FloatMs: fDet, Int8Ms: qDet, Speedup: speed(fDet, qDet),
			CPUMs:  m.MeanLatency(accel.CPU, accel.DET, accel.ResKITTI),
			ASICMs: m.MeanLatency(accel.ASIC, accel.DET, accel.ResKITTI)},
		{Engine: "TRA", FloatMs: fTra, Int8Ms: qTra, Speedup: speed(fTra, qTra),
			CPUMs:  m.MeanLatency(accel.CPU, accel.TRA, accel.ResKITTI),
			ASICMs: m.MeanLatency(accel.ASIC, accel.TRA, accel.ResKITTI)},
	}
	return QuantizedResult{Rows: rows, Frames: opts.NativeFrames}, nil
}
