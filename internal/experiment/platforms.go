package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
)

func init() { register("platform-analysis", runPlatformAnalysis) }

// PlatformAnalysisRow relates a platform's calibrated effective throughput
// on one engine to its Table 2 peak, yielding the implied efficiency (or,
// for the extrapolated ASICs, the implied number of processing units).
type PlatformAnalysisRow struct {
	Platform   accel.Platform
	Engine     accel.Engine
	EffGMACs   float64 // effective throughput from the calibration (GMAC/s)
	PeakGMACs  float64 // single-device peak from Table 2 specs
	Efficiency float64 // Eff/Peak; >1 means multiple units were assumed
}

// PlatformAnalysisResult is an extension experiment: it inverts the
// latency calibration to show what hardware efficiency (or unit count) the
// paper's measurements imply, connecting the reproduction's models back to
// the Table 2 specifications.
type PlatformAnalysisResult struct {
	Rows []PlatformAnalysisRow
}

func (PlatformAnalysisResult) ID() string { return "platform-analysis" }

func (r PlatformAnalysisResult) Render() string {
	var b strings.Builder
	b.WriteString(header("platform-analysis", "Implied efficiency vs. Table 2 peaks (extension)"))
	fmt.Fprintf(&b, "%-9s %-7s %14s %14s %12s\n",
		"Platform", "Engine", "effective", "peak", "implied eff")
	for _, row := range r.Rows {
		eff := fmt.Sprintf("%.1f%%", 100*row.Efficiency)
		if row.Efficiency > 1 {
			eff = fmt.Sprintf("%.1fx units", row.Efficiency)
		}
		fmt.Fprintf(&b, "%-9s %-7s %11.1f GMAC/s %8.1f GMAC/s %12s\n",
			row.Platform, row.Engine, row.EffGMACs, row.PeakGMACs, eff)
	}
	b.WriteString("\nReadings: the GPU sustains ~25% of peak on the conv-heavy DET (typical\n")
	b.WriteString("for cuDNN-era kernels) and far less on the memory-bound FC-heavy TRA;\n")
	b.WriteString("the CPU numbers imply <1% of peak (framework + memory overheads, as the\n")
	b.WriteString("paper measured); FPGA DET is DSP-limited near 20% of fabric peak; the\n")
	b.WriteString("ASIC rows above 1x reflect the paper extrapolating published designs\n")
	b.WriteString("'based on the amount of processing units needed'.\n")
	return b.String()
}

// peakGMACs returns the single-device peak MAC throughput implied by the
// Table 2 specification for the platform (and for ASIC, for the specific
// engine's accelerator: Eyeriss for DET/TRA conv, EIE for FC, the Table 3
// FE ASIC for LOC).
func peakGMACs(p accel.Platform, e accel.Engine) float64 {
	switch p {
	case accel.CPU:
		// 16 cores × 3.2 GHz × 8 SP MACs/cycle (AVX2 FMA).
		return 16 * 3.2 * 8
	case accel.GPU:
		// 3584 CUDA cores × 1.4 GHz × 1 FMA/cycle.
		return 3584 * 1.4
	case accel.FPGA:
		// 256 DSPs × 0.8 GHz × 1 MAC/cycle.
		return 256 * 0.8
	default:
		switch e {
		case accel.DET, accel.TRA:
			// Eyeriss: 168 PEs × 0.2 GHz.
			return 168 * 0.2
		default:
			// Table 3 FE ASIC: a single 4 GHz pipeline, 1 op/cycle.
			return 4.0
		}
	}
}

func runPlatformAnalysis(Options) (Result, error) {
	m := accel.NewModel()
	w := m.Workloads()
	var rows []PlatformAnalysisRow
	for _, p := range accel.Platforms() {
		for _, e := range accel.Engines() {
			var effGMACs float64
			switch e {
			case accel.DET:
				effGMACs = w.DetMACsAt(accel.ResKITTI) / accel.PaperMean(p, e) / 1e6
			case accel.TRA:
				effGMACs = w.TraMACsAt(accel.ResKITTI) / accel.PaperMean(p, e) / 1e6
			default:
				// LOC throughput is over FE ops; comparable units.
				effGMACs = w.LocFEOpsAt(accel.ResKITTI) / accel.PaperMean(p, e) / 1e6
			}
			peak := peakGMACs(p, e)
			rows = append(rows, PlatformAnalysisRow{
				Platform:   p,
				Engine:     e,
				EffGMACs:   effGMACs,
				PeakGMACs:  peak,
				Efficiency: effGMACs / peak,
			})
		}
	}
	return PlatformAnalysisResult{Rows: rows}, nil
}
