package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/pipeline"
)

func init() { register("fig6", runFig6) }

// Fig6Row is one component's latency summary on the multicore CPU system.
type Fig6Row struct {
	Component            string
	Mean, P99, P9999     float64
	PaperMean, PaperTail float64 // -1 when the paper gives no number
}

// Fig6Result reproduces Figure 6: per-component latency of the end-to-end
// system on conventional multicore CPUs, demonstrating that DET, TRA and
// LOC each individually exceed the 100 ms constraint.
type Fig6Result struct {
	Rows []Fig6Row
}

func (Fig6Result) ID() string { return "fig6" }

func (r Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString(header("fig6", "Per-component latency on multicore CPUs (ms)"))
	fmt.Fprintf(&b, "%-9s %10s %10s %10s | %10s %12s\n",
		"Component", "Mean", "P99", "P99.99", "paper-mean", "paper-P99.99")
	for _, row := range r.Rows {
		paperMean, paperTail := "-", "-"
		if row.PaperMean >= 0 {
			paperMean = fmt.Sprintf("%.1f", row.PaperMean)
		}
		if row.PaperTail >= 0 {
			paperTail = fmt.Sprintf("%.1f", row.PaperTail)
		}
		fmt.Fprintf(&b, "%-9s %10.1f %10.1f %10.1f | %10s %12s\n",
			row.Component, row.Mean, row.P99, row.P9999, paperMean, paperTail)
	}
	b.WriteString("\nDET, TRA and LOC each exceed the 100 ms end-to-end constraint on CPUs;\n")
	b.WriteString("they are the three computational bottlenecks.\n")
	return b.String()
}

func runFig6(opts Options) (Result, error) {
	m := accel.NewModel()
	sim, err := pipeline.Simulate(m, pipeline.SimConfig{
		Assignment: pipeline.Uniform(accel.CPU),
		Frames:     opts.Frames,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	rows := []Fig6Row{
		{"DET", sim.Det.Mean(), sim.Det.P99(), sim.Det.P9999(),
			accel.PaperMean(accel.CPU, accel.DET), accel.PaperTail(accel.CPU, accel.DET)},
		{"TRA", sim.Tra.Mean(), sim.Tra.P99(), sim.Tra.P9999(),
			accel.PaperMean(accel.CPU, accel.TRA), accel.PaperTail(accel.CPU, accel.TRA)},
		{"LOC", sim.Loc.Mean(), sim.Loc.P99(), sim.Loc.P9999(),
			accel.PaperMean(accel.CPU, accel.LOC), accel.PaperTail(accel.CPU, accel.LOC)},
		{"FUSION", sim.Fusion.Mean(), sim.Fusion.P99(), sim.Fusion.P9999(),
			accel.FusionMeanMs, -1},
		{"MOTPLAN", sim.MotPlan.Mean(), sim.MotPlan.P99(), sim.MotPlan.P9999(),
			accel.MotPlanMeanMs, -1},
	}
	return Fig6Result{Rows: rows}, nil
}
