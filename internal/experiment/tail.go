package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"adsim/internal/constraint"
	"adsim/internal/dnn"
	"adsim/internal/faultinject"
	"adsim/internal/pipeline"
	"adsim/internal/scene"
)

func init() { register("tail", runTail) }

// The tail study is the before/after evaluation of the closed-loop
// tail-latency scheduler (pipeline.TailScheduler): the same seeded scenario
// and injected DET stalls are driven through the pipelined executor twice —
// once with a static in-flight window and plain deadline enforcement, once
// under the scheduler (adaptive window + anytime DET + resolution ladder) —
// and both runs are judged by the same constraint.Monitor. The scheduler
// must cut the delivered-latency P99.99 to zero hard deadline misses while
// holding the accuracy proxy (mean detections per frame) at or above the
// static baseline, which sheds entire detection sets whenever DET misses.
const (
	// tailCeiling is the static in-flight window, and the scheduler's
	// admission ceiling. Deep enough that a stall burst stacks queueing
	// delay on the frames admitted behind it.
	tailCeiling = 6
	// tailBaseSize is DET's base input resolution; the ladder descends from
	// it. Chosen so the full network costs several ms — the slice the
	// anytime exit wins back when a stall has eaten most of the budget.
	tailBaseSize = 192
	// tailSpec stalls DET for 32ms on three consecutive frames out of every
	// seven: inside the 35ms DET budget, but close enough that the full
	// network no longer fits (a plain miss), while an anytime exit commits
	// with room to spare.
	tailSpec = "DET:delay=32ms:every=7:burst=3"
	// tailPeriod is the controller decision interval for the study.
	tailPeriod = 8
	// tailTarget steers the controller's rolling P99.99 toward deep margin
	// under the 100ms constraint — a setpoint at the constraint itself
	// would leave the controller content with frames that barely scrape in.
	tailTarget = 40 * time.Millisecond
	// tailWarmup frames are excluded from BOTH runs' verdicts: the first
	// deliveries pay one-time costs (network and scratch allocation, map
	// tile faults) that belong to startup, not to the steady state the
	// study compares. The controller still sees them — its convergence is
	// part of what is measured.
	tailWarmup = 30
)

// tailLadder is the committed DET resolution ladder for the scheduled run.
func tailLadder() []int { return []int{192, 128, 96, 64} }

// tailParams sizes one study execution. The experiment-test sizing skips
// the DNNs so wall-clock margins stay honest under the race detector's
// slowdown; the full study runs them — the anytime exit's value is exactly
// the network time it sheds.
type tailParams struct {
	Frames int
	DNN    bool
	Seed   int64
}

// TailRun is one configuration's measured outcome.
type TailRun struct {
	Name       string
	TailMs     float64 // delivered-wall P99.99 over the run
	MeanMs     float64
	FPS        float64
	HardMisses int // frames delivered past the 100ms constraint
	DetMisses  int // frames that shed detections entirely
	Anytime    int // frames that committed a coarser set on time
	MeanDets   float64
	MinWindow  int // smallest admission window reached
	MaxRung    int // deepest resolution rung visited
	Report     constraint.LiveReport
}

// TailResult is the rendered before/after study.
type TailResult struct {
	Baseline  TailRun
	Scheduled TailRun
	Frames    int
	DNN       bool
}

func (TailResult) ID() string { return "tail" }

// Pass is the study's acceptance bar: the scheduler must reduce the P99.99,
// deliver zero hard deadline misses, and hold the accuracy proxy at or
// above the static baseline.
func (r TailResult) Pass() bool {
	return r.Scheduled.TailMs < r.Baseline.TailMs &&
		r.Scheduled.HardMisses == 0 &&
		r.Scheduled.MeanDets >= r.Baseline.MeanDets
}

func (r TailResult) Render() string {
	var b strings.Builder
	b.WriteString(header("tail", "Closed-loop tail-latency scheduling, static window vs adaptive"))
	fmt.Fprintf(&b, "scenario: urban, %d frames (first %d excluded as warmup), %s,\n%s stalls, DET budget 35ms of %v\n\n",
		r.Frames, tailWarmup, map[bool]string{true: "native DNNs", false: "functional perception"}[r.DNN],
		tailSpec, pipeline.DefaultFrameBudget)
	fmt.Fprintf(&b, "%-10s %10s %8s %6s %10s %9s %8s %11s %8s %5s\n",
		"config", "p99.99-ms", "mean-ms", "fps", "hard-miss", "det-miss", "anytime", "dets/frame", "min-win", "rung")
	for _, run := range []TailRun{r.Baseline, r.Scheduled} {
		fmt.Fprintf(&b, "%-10s %10.1f %8.1f %6.1f %10d %9d %8d %11.2f %8d %5d\n",
			run.Name, run.TailMs, run.MeanMs, run.FPS, run.HardMisses,
			run.DetMisses, run.Anytime, run.MeanDets, run.MinWindow, run.MaxRung)
	}
	for _, run := range []TailRun{r.Baseline, r.Scheduled} {
		fmt.Fprintf(&b, "\n%s monitor verdict:\n", run.Name)
		for _, line := range strings.Split(strings.TrimRight(run.Report.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	verdict := "FAIL"
	if r.Pass() {
		verdict = "PASS"
	}
	fmt.Fprintf(&b, "\ntail-study %s: p99.99 %.1fms -> %.1fms, hard misses %d -> %d, dets/frame %.2f -> %.2f\n",
		verdict, r.Baseline.TailMs, r.Scheduled.TailMs,
		r.Baseline.HardMisses, r.Scheduled.HardMisses,
		r.Baseline.MeanDets, r.Scheduled.MeanDets)
	return b.String()
}

func runTail(opts Options) (Result, error) {
	// NativeFrames is the sizing knob shared with the other native-execution
	// experiments: the study needs hundreds of delivered frames to exercise
	// the controller, so it scales the knob up; small test sizings also run
	// without the DNNs (see tailParams).
	frames := 25 * opts.NativeFrames
	if frames < 150 {
		frames = 150
	}
	return runTailStudy(tailParams{Frames: frames, DNN: opts.NativeFrames >= 12, Seed: opts.Seed})
}

func runTailStudy(p tailParams) (TailResult, error) {
	base, err := runTailCase(p, false)
	if err != nil {
		return TailResult{}, fmt.Errorf("tail baseline: %w", err)
	}
	// Collect the baseline's allocation debt before the scheduled run starts:
	// otherwise the concurrent collector's mark assists for the PREVIOUS
	// configuration's floating garbage land inside the scheduled run's frame
	// deadlines and bill the baseline's memory traffic to the scheduler.
	runtime.GC()
	sched, err := runTailCase(p, true)
	if err != nil {
		return TailResult{}, fmt.Errorf("tail scheduled: %w", err)
	}
	return TailResult{Baseline: base, Scheduled: sched, Frames: p.Frames, DNN: p.DNN}, nil
}

// runTailCase drives one configuration: identical scenario, faults and
// deadline budgets; only the scheduler (and with it the anytime policy and
// the ladder) differs.
func runTailCase(p tailParams, scheduled bool) (TailRun, error) {
	cfg := pipeline.DefaultConfig(scene.Urban)
	cfg.Scene.Width, cfg.Scene.Height = 384, 192
	cfg.Scene.Seed = p.Seed
	cfg.SurveyFrames = 20
	cfg.Detect.RunDNN = p.DNN
	cfg.Track.RunDNN = p.DNN
	cfg.Detect.InputSize = tailBaseSize
	if p.DNN {
		// A single-worker executor models the paper's constrained compute:
		// sharding the convolutions across host cores would let the stalled
		// frames scrape inside the budget and dissolve the study's pressure.
		cfg.Detect.Executor = dnn.NewExecutor(1)
	}
	cfg.Deadline = pipeline.DeadlinePolicy{Enforce: true, Anytime: scheduled}
	inj, err := faultinject.New(faultinject.MustParse(tailSpec, p.Seed))
	if err != nil {
		return TailRun{}, err
	}
	cfg.Inject = inj.Stage

	pl, err := pipeline.NewNative(cfg)
	if err != nil {
		return TailRun{}, err
	}
	ropts := pipeline.RunnerOptions{InFlight: tailCeiling}
	var ts *pipeline.TailScheduler
	if scheduled {
		ts, err = pipeline.NewTailScheduler(pipeline.TailConfig{
			Target: tailTarget,
			Window: p.Frames,
			Period: tailPeriod,
			// Start admission at 1: the first stall burst arrives before any
			// feedback exists, and queueing stacked behind it cannot be
			// un-admitted. Sustained calm earns the window back.
			InitialWindow: 1,
			Ladder:        tailLadder(),
		})
		if err != nil {
			return TailRun{}, err
		}
		ropts.Tail = ts
	}
	r, err := pipeline.NewRunner(pl, ropts)
	if err != nil {
		return TailRun{}, err
	}

	// Both runs are judged by an identically-configured constraint.Monitor
	// fed every delivered frame; the scheduler's internal monitor is its
	// control signal, this one is the study's referee.
	mon := constraint.NewMonitor(constraint.MonitorConfig{Window: p.Frames})
	run := TailRun{Name: "static", MinWindow: tailCeiling}
	if scheduled {
		run.Name = "adaptive"
	}
	dets, judged := 0, 0
	for res := range r.Run(p.Frames) {
		if res.Err != nil {
			return TailRun{}, fmt.Errorf("frame %d: %w", res.Frame.Index, res.Err)
		}
		if res.Frame.Index < tailWarmup && p.Frames > 2*tailWarmup {
			continue
		}
		judged++
		mon.ObserveDegraded(float64(res.Wall)/1e6, time.Now(), res.Degraded.Any())
		if res.Degraded.Has(pipeline.StageDet) {
			run.DetMisses++
		}
		if res.Degraded.Anytime() {
			run.Anytime++
		}
		dets += len(res.Detections)
	}
	pl.Drain()

	snap := mon.Snapshot()
	run.Report = snap
	run.TailMs = snap.TailMs
	run.MeanMs = snap.MeanMs
	run.FPS = snap.FPS
	run.HardMisses = snap.HardMisses
	run.MeanDets = float64(dets) / float64(judged)
	if ts != nil {
		run.MinWindow = ts.MinWindowLimit()
		run.MaxRung = ts.MaxRungDepth()
	}
	return run, nil
}
