package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/stats"
)

func init() { register("fig10", runFig10) }

// Fig10Cell is one (platform, engine) measurement.
type Fig10Cell struct {
	Platform             accel.Platform
	Engine               accel.Engine
	Mean, Tail           float64 // ms
	PaperMean, PaperTail float64 // ms
	PowerW               float64
}

// Fig10Result reproduces Figure 10: per-bottleneck mean latency (a),
// 99.99th-percentile latency (b) and power (c) across the four platforms.
type Fig10Result struct {
	Cells []Fig10Cell
}

func (Fig10Result) ID() string { return "fig10" }

func (r Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString(header("fig10", "Acceleration results across platforms"))
	for _, part := range []struct {
		title string
		get   func(Fig10Cell) (float64, float64)
		unit  string
	}{
		{"(a) Mean latency", func(c Fig10Cell) (float64, float64) { return c.Mean, c.PaperMean }, "ms"},
		{"(b) 99.99th-percentile latency", func(c Fig10Cell) (float64, float64) { return c.Tail, c.PaperTail }, "ms"},
		{"(c) Power", func(c Fig10Cell) (float64, float64) { return c.PowerW, c.PowerW }, "W"},
	} {
		fmt.Fprintf(&b, "\n%s (%s, measured / paper)\n", part.title, part.unit)
		fmt.Fprintf(&b, "%-6s", "")
		for _, e := range accel.Engines() {
			fmt.Fprintf(&b, " %22s", e.String())
		}
		b.WriteString("\n")
		for _, p := range accel.Platforms() {
			fmt.Fprintf(&b, "%-6s", p.String())
			for _, e := range accel.Engines() {
				cell := r.cell(p, e)
				got, paper := part.get(cell)
				fmt.Fprintf(&b, " %10.1f / %9.1f", got, paper)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func (r Fig10Result) cell(p accel.Platform, e accel.Engine) Fig10Cell {
	for _, c := range r.Cells {
		if c.Platform == p && c.Engine == e {
			return c
		}
	}
	return Fig10Cell{}
}

func runFig10(opts Options) (Result, error) {
	m := accel.NewModel()
	rng := stats.NewRNG(opts.Seed)
	var cells []Fig10Cell
	for _, p := range accel.Platforms() {
		for _, e := range accel.Engines() {
			d := stats.NewDistribution(opts.Frames)
			for i := 0; i < opts.Frames; i++ {
				d.Add(m.Sample(p, e, accel.ResKITTI, rng))
			}
			cells = append(cells, Fig10Cell{
				Platform:  p,
				Engine:    e,
				Mean:      d.Mean(),
				Tail:      d.P9999(),
				PaperMean: accel.PaperMean(p, e),
				PaperTail: accel.PaperTail(p, e),
				PowerW:    m.Power(p, e),
			})
		}
	}
	return Fig10Result{Cells: cells}, nil
}
