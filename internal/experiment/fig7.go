package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/pipeline"
	"adsim/internal/scene"
	"adsim/internal/telemetry"
)

func init() { register("fig7", runFig7) }

// Fig7Row is one engine's cycle breakdown.
type Fig7Row struct {
	Engine string
	// HotShare is the measured fraction of engine time in the hot kernel
	// (DNN for DET/TRA, FE for LOC) on this machine's native run.
	HotShare float64
	// PaperShare is the paper's Fig 7 fraction.
	PaperShare float64
	HotLabel   string
}

// Fig7Result reproduces Figure 7: the cycle breakdown showing the DNN
// portions of DET/TRA and the FE portion of LOC dominate their engines —
// measured by instrumenting the NATIVE Go pipeline (the paper instrumented
// its Caffe/C++ pipeline; absolute scale differs, the dominance shape is
// the reproduced claim).
type Fig7Result struct {
	Rows   []Fig7Row
	Frames int
}

func (Fig7Result) ID() string { return "fig7" }

func (r Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString(header("fig7", "Cycle breakdown of DET, TRA, LOC (hot kernel share)"))
	fmt.Fprintf(&b, "%-8s %-8s %14s %14s\n", "Engine", "Kernel", "measured", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-8s %13.1f%% %13.1f%%\n",
			row.Engine, row.HotLabel, 100*row.HotShare, 100*row.PaperShare)
	}
	fmt.Fprintf(&b, "\n(native instrumentation over %d frames; tiny-scale networks, so the\n", r.Frames)
	b.WriteString("measured DNN share is a lower bound on the paper-scale share)\n")
	return b.String()
}

func runFig7(opts Options) (Result, error) {
	cfg := pipeline.DefaultConfig(scene.Urban)
	cfg.Scene.Width, cfg.Scene.Height = 512, 256
	cfg.SurveyFrames = 20
	// The breakdown now comes entirely from the telemetry layer: the stage
	// bodies emit kernel sub-spans ("DET/dnn", "TRA/dnn", "TRA/other",
	// "LOC/fe") alongside the stage spans, and the collector's lifetime
	// exec sums are the figure's numerators and denominators.
	col := telemetry.NewCollector(0)
	cfg.Telemetry = col
	p, err := pipeline.NewNative(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < opts.NativeFrames; i++ {
		if _, err := p.Step(); err != nil {
			return nil, err
		}
	}
	share := func(hot, total float64) float64 {
		if total <= 0 {
			return 0
		}
		return hot / total
	}
	// TRA's kernels only run once tracks exist, and the tracker pool
	// propagates objects on parallel goroutines — its breakdown must divide
	// summed per-tracker work (DNN+Other), not the stage's wall time, which
	// the pool can exceed when trackers overlap. The sub-spans are emitted
	// only on frames where the kernel ran, so the sums already restrict to
	// those frames.
	traDNN, traOther := col.ExecSumMs("TRA/dnn"), col.ExecSumMs("TRA/other")
	rows := []Fig7Row{
		{Engine: "DET", HotLabel: "DNN",
			HotShare: share(col.ExecSumMs("DET/dnn"), col.ExecSumMs("DET")), PaperShare: 0.994},
		{Engine: "TRA", HotLabel: "DNN",
			HotShare: share(traDNN, traDNN+traOther), PaperShare: 0.990},
		{Engine: "LOC", HotLabel: "FE",
			HotShare: share(col.ExecSumMs("LOC/fe"), col.ExecSumMs("LOC")), PaperShare: 0.859},
	}
	return Fig7Result{Rows: rows, Frames: opts.NativeFrames}, nil
}
