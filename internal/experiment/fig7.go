package experiment

import (
	"fmt"
	"strings"
	"time"

	"adsim/internal/pipeline"
	"adsim/internal/scene"
)

func init() { register("fig7", runFig7) }

// Fig7Row is one engine's cycle breakdown.
type Fig7Row struct {
	Engine string
	// HotShare is the measured fraction of engine time in the hot kernel
	// (DNN for DET/TRA, FE for LOC) on this machine's native run.
	HotShare float64
	// PaperShare is the paper's Fig 7 fraction.
	PaperShare float64
	HotLabel   string
}

// Fig7Result reproduces Figure 7: the cycle breakdown showing the DNN
// portions of DET/TRA and the FE portion of LOC dominate their engines —
// measured by instrumenting the NATIVE Go pipeline (the paper instrumented
// its Caffe/C++ pipeline; absolute scale differs, the dominance shape is
// the reproduced claim).
type Fig7Result struct {
	Rows   []Fig7Row
	Frames int
}

func (Fig7Result) ID() string { return "fig7" }

func (r Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString(header("fig7", "Cycle breakdown of DET, TRA, LOC (hot kernel share)"))
	fmt.Fprintf(&b, "%-8s %-8s %14s %14s\n", "Engine", "Kernel", "measured", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-8s %13.1f%% %13.1f%%\n",
			row.Engine, row.HotLabel, 100*row.HotShare, 100*row.PaperShare)
	}
	fmt.Fprintf(&b, "\n(native instrumentation over %d frames; tiny-scale networks, so the\n", r.Frames)
	b.WriteString("measured DNN share is a lower bound on the paper-scale share)\n")
	return b.String()
}

func runFig7(opts Options) (Result, error) {
	cfg := pipeline.DefaultConfig(scene.Urban)
	cfg.Scene.Width, cfg.Scene.Height = 512, 256
	cfg.SurveyFrames = 20
	p, err := pipeline.NewNative(cfg)
	if err != nil {
		return nil, err
	}
	var det, detDNN, tra, traDNN, loc, locFE time.Duration
	traFrames := 0
	for i := 0; i < opts.NativeFrames; i++ {
		res, err := p.Step()
		if err != nil {
			return nil, err
		}
		det += res.Timing.Det
		detDNN += res.Timing.DetDNN
		loc += res.Timing.Loc
		locFE += res.Timing.LocFE
		// TRA only exercises its kernels once tracks exist. The tracker
		// pool propagates objects on parallel goroutines, so its breakdown
		// sums per-tracker work: the denominator must be the same summed
		// work (DNN+Other), not the stage's wall time, which the pool can
		// exceed when trackers overlap.
		if res.Timing.TraDNN > 0 {
			tra += res.Timing.TraDNN + res.Timing.TraOther
			traDNN += res.Timing.TraDNN
			traFrames++
		}
	}
	share := func(hot, total time.Duration) float64 {
		if total <= 0 {
			return 0
		}
		return float64(hot) / float64(total)
	}
	rows := []Fig7Row{
		{Engine: "DET", HotLabel: "DNN", HotShare: share(detDNN, det), PaperShare: 0.994},
		{Engine: "TRA", HotLabel: "DNN", HotShare: share(traDNN, tra), PaperShare: 0.990},
		{Engine: "LOC", HotLabel: "FE", HotShare: share(locFE, loc), PaperShare: 0.859},
	}
	return Fig7Result{Rows: rows, Frames: opts.NativeFrames}, nil
}
