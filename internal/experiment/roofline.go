package experiment

import (
	"fmt"
	"strings"

	"adsim/internal/accel"
	"adsim/internal/dnn"
)

func init() { register("roofline", runRoofline) }

// RooflineResult is an extension experiment: the layer-wise roofline
// classification of the paper's two DNN workloads on every platform,
// explaining *why* the platforms rank as Fig 10 shows (FPGA's thin memory
// interface, GOTURN's memory-bound FC head, Eyeriss's on-chip reuse).
type RooflineResult struct {
	Summaries []accel.NetworkSummary
	// FCLayersMemBound counts GOTURN FC layers that are memory-bound on
	// every general-purpose platform.
	GoturnFCRows []string
}

func (RooflineResult) ID() string { return "roofline" }

func (r RooflineResult) Render() string {
	var b strings.Builder
	b.WriteString(header("roofline", "Layer-wise roofline classification (extension)"))
	fmt.Fprintf(&b, "%-14s %-10s %18s\n", "Network", "Platform", "memory-bound MACs")
	for _, s := range r.Summaries {
		fmt.Fprintf(&b, "%-14s %-10v %17.1f%%\n", s.Network, s.Platform, 100*s.MemoryBoundShare())
	}
	b.WriteString("\nGOTURN FC head on the FPGA (the paper's TRA bottleneck):\n")
	for _, row := range r.GoturnFCRows {
		fmt.Fprintf(&b, "  %s\n", row)
	}
	b.WriteString("\nThe FC head's arithmetic intensity is ~0.25 MAC/byte — memory-bound on\n")
	b.WriteString("every platform, catastrophically so on the Stratix V's 6.4 GB/s link;\n")
	b.WriteString("this is why the paper pairs TRA with EIE's compressed-weight FC ASIC.\n")
	return b.String()
}

func runRoofline(Options) (Result, error) {
	yolo := dnn.YOLOv2(416)
	tower := dnn.GOTURNTower(227)
	head := dnn.GOTURNHead(tower.OutShape())

	var res RooflineResult
	for _, n := range []*dnn.Network{yolo, tower, head} {
		for _, p := range accel.Platforms() {
			res.Summaries = append(res.Summaries, accel.Summarize(n, p))
		}
	}
	for _, l := range accel.AnalyzeNetwork(head, accel.FPGA) {
		res.GoturnFCRows = append(res.GoturnFCRows, fmt.Sprintf(
			"%-10s %10.2f MMACs %8.1f MB %8.3f MAC/B  %s-bound",
			l.Name, float64(l.MACs)/1e6, float64(l.Bytes)/1e6, l.Intensity, l.Bound))
	}
	return res, nil
}
