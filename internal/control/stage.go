package control

// StageName identifies the controller in the pipeline's declarative stage
// graph and in telemetry spans (implements telemetry.Stage).
func (c *Controller) StageName() string { return "CONTROL" }
