// Package control implements the vehicle-control engine — step 5 of the
// paper's Figure 1: "the vehicle control engine simply follows the planned
// paths and trajectories by operating the vehicle."
//
// Steering uses pure pursuit (the controller used by the CMU Boss vehicle
// the paper's planners descend from): the controller chases a look-ahead
// point on the planned path and commands the curvature of the circular arc
// that reaches it. Speed uses a proportional controller toward the
// waypoint's commanded speed with acceleration and deceleration limits.
// The kinematic bicycle model in this package closes the loop for tests
// and examples.
package control

import (
	"fmt"
	"math"

	"adsim/internal/plan"
)

// Command is one actuation output.
type Command struct {
	// Curvature is the commanded path curvature (1/m); positive turns
	// toward +X (right, in the pipeline's world frame).
	Curvature float64
	// Accel is the commanded longitudinal acceleration (m/s²).
	Accel float64
	// TargetSpeed is the speed the controller is converging to (m/s).
	TargetSpeed float64
}

// Config parameterizes the controller.
type Config struct {
	// LookaheadBase and LookaheadGain set the pure-pursuit look-ahead
	// distance: L = base + gain × speed.
	LookaheadBase float64
	LookaheadGain float64
	// MaxCurvature bounds steering (1/m).
	MaxCurvature float64
	// MaxAccel / MaxBrake bound longitudinal control (m/s², both > 0).
	MaxAccel float64
	MaxBrake float64
	// SpeedGain is the proportional speed-error gain (1/s).
	SpeedGain float64
}

// DefaultConfig returns gains suitable for the simulated passenger vehicle.
func DefaultConfig() Config {
	return Config{
		LookaheadBase: 3.0,
		LookaheadGain: 0.35,
		MaxCurvature:  0.2, // ~5 m minimum turn radius
		MaxAccel:      2.5,
		MaxBrake:      6.0,
		SpeedGain:     1.2,
	}
}

func (c *Config) validate() error {
	if c.LookaheadBase <= 0 || c.MaxCurvature <= 0 ||
		c.MaxAccel <= 0 || c.MaxBrake <= 0 || c.SpeedGain <= 0 {
		return fmt.Errorf("control: non-positive gain in %+v", *c)
	}
	return nil
}

// State is the vehicle state the controller acts on.
type State struct {
	X, Z  float64 // position (m)
	Theta float64 // heading (rad, 0 = +Z, positive toward +X)
	Speed float64 // m/s
}

// Controller computes actuation commands from the planned path.
type Controller struct {
	cfg Config
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Track computes the actuation command that follows path from the current
// state. An empty path (or an emergency stop) commands a full-brake stop.
func (c *Controller) Track(st State, path plan.Path) Command {
	if len(path.Waypoints) == 0 {
		return Command{Accel: -c.cfg.MaxBrake, TargetSpeed: 0}
	}

	// Look-ahead target: the first waypoint that is at least L away AND
	// ahead of the vehicle (positive forward component in the vehicle
	// frame) — already-passed waypoints must never be chased.
	lookahead := c.cfg.LookaheadBase + c.cfg.LookaheadGain*st.Speed
	sin, cos := math.Sin(st.Theta), math.Cos(st.Theta)
	target := path.Waypoints[len(path.Waypoints)-1]
	for _, wp := range path.Waypoints {
		dx, dz := wp.X-st.X, wp.Z-st.Z
		if dx*sin+dz*cos <= 0 {
			continue // behind the vehicle
		}
		if math.Hypot(dx, dz) >= lookahead {
			target = wp
			break
		}
	}

	// Pure pursuit: transform the target into the vehicle frame and
	// command the arc curvature through it: k = 2·x_lateral / d².
	dx := target.X - st.X
	dz := target.Z - st.Z
	lateral := dx*cos - dz*sin // vehicle-frame lateral offset
	forward := dx*sin + dz*cos // vehicle-frame forward distance
	d2 := lateral*lateral + forward*forward
	var curvature float64
	if d2 > 1e-9 {
		curvature = 2 * lateral / d2
	}
	if curvature > c.cfg.MaxCurvature {
		curvature = c.cfg.MaxCurvature
	}
	if curvature < -c.cfg.MaxCurvature {
		curvature = -c.cfg.MaxCurvature
	}

	// Proportional speed control toward the target waypoint's speed.
	accel := c.cfg.SpeedGain * (target.Speed - st.Speed)
	if accel > c.cfg.MaxAccel {
		accel = c.cfg.MaxAccel
	}
	if accel < -c.cfg.MaxBrake {
		accel = -c.cfg.MaxBrake
	}
	return Command{Curvature: curvature, Accel: accel, TargetSpeed: target.Speed}
}

// Vehicle is a kinematic bicycle model for closed-loop simulation.
type Vehicle struct {
	State State
}

// Apply advances the vehicle by dt seconds under cmd.
func (v *Vehicle) Apply(cmd Command, dt float64) {
	if dt <= 0 {
		return
	}
	v.State.Speed += cmd.Accel * dt
	if v.State.Speed < 0 {
		v.State.Speed = 0
	}
	dist := v.State.Speed * dt
	v.State.Theta += cmd.Curvature * dist
	v.State.X += math.Sin(v.State.Theta) * dist
	v.State.Z += math.Cos(v.State.Theta) * dist
}

// CrossTrackError returns the lateral distance from the state to the
// nearest segment of the path — the standard tracking-quality metric.
func CrossTrackError(st State, path plan.Path) float64 {
	wps := path.Waypoints
	if len(wps) == 0 {
		return 0
	}
	if len(wps) == 1 {
		return math.Hypot(wps[0].X-st.X, wps[0].Z-st.Z)
	}
	best := math.Inf(1)
	for i := 1; i < len(wps); i++ {
		d := distPointSegment(st.X, st.Z, wps[i-1].X, wps[i-1].Z, wps[i].X, wps[i].Z)
		if d < best {
			best = d
		}
	}
	return best
}

func distPointSegment(px, pz, ax, az, bx, bz float64) float64 {
	dx, dz := bx-ax, bz-az
	lenSq := dx*dx + dz*dz
	if lenSq == 0 {
		return math.Hypot(px-ax, pz-az)
	}
	t := ((px-ax)*dx + (pz-az)*dz) / lenSq
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return math.Hypot(px-(ax+t*dx), pz-(az+t*dz))
}
