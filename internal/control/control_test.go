package control

import (
	"math"
	"testing"
	"testing/quick"

	"adsim/internal/plan"
)

func straightPath(z0, z1, speed float64) plan.Path {
	var p plan.Path
	for z := z0; z <= z1; z += 1.5 {
		p.Waypoints = append(p.Waypoints, plan.Waypoint{X: 0, Z: z, Speed: speed})
	}
	return p
}

func TestNewValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.MaxAccel = 0
	if _, err := New(bad); err == nil {
		t.Error("zero accel limit accepted")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal("default config rejected")
	}
}

func TestEmptyPathBrakes(t *testing.T) {
	c, _ := New(DefaultConfig())
	cmd := c.Track(State{Speed: 10}, plan.Path{})
	if cmd.Accel >= 0 || cmd.TargetSpeed != 0 {
		t.Errorf("empty path should brake: %+v", cmd)
	}
}

func TestStraightPathNoSteering(t *testing.T) {
	c, _ := New(DefaultConfig())
	cmd := c.Track(State{X: 0, Z: 0, Speed: 10}, straightPath(1, 40, 13))
	if math.Abs(cmd.Curvature) > 1e-9 {
		t.Errorf("on-path straight tracking commanded curvature %v", cmd.Curvature)
	}
	if cmd.Accel <= 0 {
		t.Error("below target speed should accelerate")
	}
}

func TestOffsetCommandsCorrection(t *testing.T) {
	c, _ := New(DefaultConfig())
	// Vehicle left of the path (X=-2): must steer right (+curvature).
	cmd := c.Track(State{X: -2, Z: 0, Speed: 10}, straightPath(1, 40, 13))
	if cmd.Curvature <= 0 {
		t.Errorf("left offset should steer right, got %v", cmd.Curvature)
	}
	// Vehicle right of the path: steer left.
	cmd2 := c.Track(State{X: 2, Z: 0, Speed: 10}, straightPath(1, 40, 13))
	if cmd2.Curvature >= 0 {
		t.Errorf("right offset should steer left, got %v", cmd2.Curvature)
	}
}

func TestCurvatureSaturates(t *testing.T) {
	cfg := DefaultConfig()
	c, _ := New(cfg)
	// Target far to the side at close range: demand exceeds the limit.
	p := plan.Path{Waypoints: []plan.Waypoint{{X: 50, Z: 1, Speed: 5}}}
	cmd := c.Track(State{Speed: 5}, p)
	if math.Abs(cmd.Curvature) > cfg.MaxCurvature+1e-12 {
		t.Errorf("curvature %v exceeds limit %v", cmd.Curvature, cfg.MaxCurvature)
	}
}

func TestSpeedControlSign(t *testing.T) {
	c, _ := New(DefaultConfig())
	slow := c.Track(State{Speed: 20}, straightPath(1, 40, 10))
	if slow.Accel >= 0 {
		t.Error("above target speed should brake")
	}
	if slow.Accel < -DefaultConfig().MaxBrake {
		t.Error("brake command exceeds limit")
	}
	fast := c.Track(State{Speed: 0}, straightPath(1, 40, 10))
	if fast.Accel > DefaultConfig().MaxAccel {
		t.Error("accel command exceeds limit")
	}
}

func TestVehicleKinematics(t *testing.T) {
	v := Vehicle{State: State{Speed: 10}}
	v.Apply(Command{Curvature: 0, Accel: 0}, 1.0)
	if math.Abs(v.State.Z-10) > 1e-9 || v.State.X != 0 {
		t.Errorf("straight motion wrong: %+v", v.State)
	}
	// Braking cannot produce reverse motion.
	v2 := Vehicle{State: State{Speed: 1}}
	v2.Apply(Command{Accel: -10}, 1.0)
	if v2.State.Speed != 0 {
		t.Errorf("speed = %v, want clamped 0", v2.State.Speed)
	}
	// Positive curvature turns toward +X.
	v3 := Vehicle{State: State{Speed: 5}}
	for i := 0; i < 10; i++ {
		v3.Apply(Command{Curvature: 0.1}, 0.1)
	}
	if v3.State.X <= 0 {
		t.Errorf("positive curvature should move toward +X: %+v", v3.State)
	}
	// dt <= 0 is a no-op.
	before := v3.State
	v3.Apply(Command{Accel: 5}, 0)
	if v3.State != before {
		t.Error("zero-dt Apply changed state")
	}
}

func TestClosedLoopConvergesToPath(t *testing.T) {
	c, _ := New(DefaultConfig())
	path := straightPath(1, 400, 13)                  // long enough for the full 20 s run
	v := Vehicle{State: State{X: -3, Z: 0, Speed: 8}} // 3 m off the lane
	dt := 0.05
	for i := 0; i < 400; i++ { // 20 s ≈ 260 m
		cmd := c.Track(v.State, path)
		v.Apply(cmd, dt)
	}
	if xte := CrossTrackError(v.State, path); xte > 0.3 {
		t.Errorf("cross-track error after convergence = %.2f m", xte)
	}
	if math.Abs(v.State.Speed-13) > 0.5 {
		t.Errorf("speed = %.1f, want ~13", v.State.Speed)
	}
}

func TestClosedLoopFollowsLaneChange(t *testing.T) {
	c, _ := New(DefaultConfig())
	// Path shifts from lane X=0 to X=3.5 over 30 m.
	var path plan.Path
	for z := 1.0; z <= 150; z += 1.5 {
		x := 0.0
		switch {
		case z > 50 && z < 80:
			x = 3.5 * (z - 50) / 30
		case z >= 80:
			x = 3.5
		}
		path.Waypoints = append(path.Waypoints, plan.Waypoint{X: x, Z: z, Speed: 10})
	}
	v := Vehicle{State: State{Speed: 10}}
	dt := 0.05
	for i := 0; i < 400; i++ {
		v.Apply(c.Track(v.State, path), dt)
	}
	if math.Abs(v.State.X-3.5) > 0.5 {
		t.Errorf("vehicle at X=%.2f after lane change, want ~3.5", v.State.X)
	}
}

func TestCrossTrackError(t *testing.T) {
	path := straightPath(0, 10, 5)
	if xte := CrossTrackError(State{X: 2, Z: 5}, path); math.Abs(xte-2) > 1e-9 {
		t.Errorf("XTE = %v, want 2", xte)
	}
	if CrossTrackError(State{}, plan.Path{}) != 0 {
		t.Error("empty path XTE should be 0")
	}
	single := plan.Path{Waypoints: []plan.Waypoint{{X: 3, Z: 4}}}
	if xte := CrossTrackError(State{}, single); math.Abs(xte-5) > 1e-9 {
		t.Errorf("single-waypoint XTE = %v, want 5", xte)
	}
}

// Property: commands always respect the configured limits.
func TestCommandLimitsProperty(t *testing.T) {
	cfg := DefaultConfig()
	c, _ := New(cfg)
	f := func(x, z int8, speed uint8, tx, tz int8, tspeed uint8) bool {
		p := plan.Path{Waypoints: []plan.Waypoint{{
			X: float64(tx), Z: float64(tz), Speed: float64(tspeed % 30),
		}}}
		cmd := c.Track(State{X: float64(x), Z: float64(z), Speed: float64(speed % 40)}, p)
		return math.Abs(cmd.Curvature) <= cfg.MaxCurvature+1e-12 &&
			cmd.Accel <= cfg.MaxAccel+1e-12 && cmd.Accel >= -cfg.MaxBrake-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the kinematic model conserves position under zero speed.
func TestVehicleZeroSpeedProperty(t *testing.T) {
	f := func(k int8, dt uint8) bool {
		v := Vehicle{State: State{X: 1, Z: 2, Speed: 0}}
		v.Apply(Command{Curvature: float64(k) / 100, Accel: 0}, float64(dt%10)/10)
		return v.State.X == 1 && v.State.Z == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
