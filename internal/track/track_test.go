package track

import (
	"math"
	"testing"
	"testing/quick"

	"adsim/internal/img"
	"adsim/internal/scene"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{PoolSize: 0, SearchScale: 2, TemplateSize: 16},
		{PoolSize: 4, SearchScale: 1, TemplateSize: 16},
		{PoolSize: 4, SearchScale: 2, TemplateSize: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestSpawnAndTableLimits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 2
	cfg.RunDNN = false
	e, _ := New(cfg)
	f := img.NewGray(100, 100)
	dets := []Detection{
		{Box: img.RectWH(0, 0, 10, 10)},
		{Box: img.RectWH(30, 0, 10, 10)},
		{Box: img.RectWH(60, 0, 10, 10)},
	}
	e.Step(f, dets)
	if e.ActiveCount() != 2 {
		t.Errorf("active = %d, want pool-limited 2", e.ActiveCount())
	}
	if e.IdleTrackers() != 0 {
		t.Errorf("idle = %d, want 0", e.IdleTrackers())
	}
}

func TestAssociationUpdatesTrack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)
	f := img.NewGray(100, 100)
	e.Step(f, []Detection{{Box: img.RectWH(10, 10, 20, 20), Class: scene.Vehicle}})
	id := e.Tracks()[0].ID

	// Slightly moved detection should associate, not spawn.
	e.Step(f, []Detection{{Box: img.RectWH(14, 10, 20, 20), Class: scene.Vehicle}})
	if e.ActiveCount() != 1 {
		t.Fatalf("active = %d, want 1 (association failed)", e.ActiveCount())
	}
	tr := e.Tracks()[0]
	if tr.ID != id {
		t.Error("track identity changed on association")
	}
	if tr.VX <= 0 {
		t.Errorf("velocity VX = %v, want positive (moved right)", tr.VX)
	}
	if tr.Misses != 0 {
		t.Errorf("misses = %d after association", tr.Misses)
	}
}

func TestMissExpiryAtTenFrames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)
	f := img.NewGray(100, 100)
	e.Step(f, []Detection{{Box: img.RectWH(10, 10, 20, 20)}})
	if e.ActiveCount() != 1 {
		t.Fatal("spawn failed")
	}
	// Miss for MissLimit-1 frames: still alive.
	for i := 0; i < MissLimit-1; i++ {
		e.Step(f, nil)
	}
	if e.ActiveCount() != 1 {
		t.Fatalf("track expired after %d misses, limit is %d", MissLimit-1, MissLimit)
	}
	// Tenth consecutive miss: expired.
	e.Step(f, nil)
	if e.ActiveCount() != 0 {
		t.Errorf("track not expired after %d misses", MissLimit)
	}
	if e.IdleTrackers() != cfg.PoolSize {
		t.Error("expired track did not return to idle pool")
	}
}

func TestMissCounterResets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)
	f := img.NewGray(100, 100)
	det := []Detection{{Box: img.RectWH(10, 10, 20, 20)}}
	e.Step(f, det)
	for i := 0; i < 5; i++ {
		e.Step(f, nil)
	}
	e.Step(f, det) // re-detected: miss counter resets
	for i := 0; i < MissLimit-1; i++ {
		e.Step(f, nil)
	}
	if e.ActiveCount() != 1 {
		t.Error("miss counter did not reset on re-detection")
	}
}

// Regression for the cross-frame aliasing bug: Tracks() used to return the
// engine's live internal slice, so frame N's FrameResult.Tracks mutated
// retroactively when frame N+1 stepped the tracker. Snapshots must be
// immutable once handed out.
func TestTracksSnapshotImmuneToLaterSteps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)

	x := 40
	frameN, _ := e.Step(movingSquareFrame(x, 40),
		[]Detection{{Box: img.RectWH(float64(x), 40, 24, 24)}})
	if len(frameN) != 1 {
		t.Fatal("spawn failed")
	}
	boxN := frameN[0].Box
	accessorN := e.Tracks()

	// Frame N+1: the object moved; the engine's live table must update,
	// but frame N's snapshots (both the Step return and the Tracks()
	// accessor) must hold their boxes.
	x += 8
	frameN1, _ := e.Step(movingSquareFrame(x, 40),
		[]Detection{{Box: img.RectWH(float64(x), 40, 24, 24)}})
	if frameN[0].Box != boxN {
		t.Errorf("frame N snapshot box mutated by frame N+1: %v -> %v", boxN, frameN[0].Box)
	}
	if accessorN[0].Box != boxN {
		t.Errorf("Tracks() snapshot box mutated by frame N+1: %v -> %v", boxN, accessorN[0].Box)
	}
	if frameN1[0].Box == boxN {
		t.Error("frame N+1 snapshot did not advance (object moved 8 px)")
	}
	// Mutating a snapshot must not corrupt the engine's table.
	frameN1[0].Box = img.RectWH(0, 0, 1, 1)
	if e.Tracks()[0].Box == frameN1[0].Box {
		t.Error("mutating a returned snapshot leaked into the engine table")
	}
}

// movingSquareFrame renders a textured square at (x,y) for tracking tests.
func movingSquareFrame(x, y int) *img.Gray {
	f := img.NewGray(200, 100)
	f.Fill(80)
	box := img.RectWH(float64(x), float64(y), 24, 24)
	f.FillRect(box, 180)
	f.StrokeRect(box, 255)
	f.FillRect(img.RectWH(float64(x)+6, float64(y)+6, 6, 6), 20) // asymmetric mark
	return f
}

func TestTemplateTrackingFollowsMotion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)

	x := 40
	e.Step(movingSquareFrame(x, 40), []Detection{{Box: img.RectWH(float64(x), 40, 24, 24)}})
	// Move the square right 4 px/frame with NO further detections: the
	// template matcher must follow it for several frames.
	for i := 0; i < 5; i++ {
		x += 4
		e.Step(movingSquareFrame(x, 40), nil)
	}
	if e.ActiveCount() != 1 {
		t.Fatal("track lost")
	}
	tr := e.Tracks()[0]
	cx, _ := tr.Box.Center()
	wantCx := float64(x) + 12
	if diff := cx - wantCx; diff > 6 || diff < -6 {
		t.Errorf("tracked center x = %.1f, want ~%.1f", cx, wantCx)
	}
}

func TestTrackOnSyntheticScene(t *testing.T) {
	gen, err := scene.New(func() scene.Config {
		c := scene.DefaultConfig(scene.Highway)
		c.Width, c.Height = 640, 360
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)

	for i := 0; i < 20; i++ {
		f := gen.Step()
		var dets []Detection
		// Feed ground truth as detections every 5th frame; the tracker
		// must coast in between.
		if i%5 == 0 {
			for _, tr := range f.Truth {
				if tr.Box.Area() >= 100 {
					dets = append(dets, Detection{Box: tr.Box, Class: tr.Class})
				}
			}
		}
		e.Step(f.Image, dets)
	}
	if e.ActiveCount() == 0 {
		t.Error("no objects tracked on highway scene")
	}
}

func TestDNNTimingDominates(t *testing.T) {
	e, _ := New(DefaultConfig())
	f0 := movingSquareFrame(40, 40)
	e.Step(f0, []Detection{{Box: img.RectWH(40, 40, 24, 24)}})
	_, tm := e.Step(movingSquareFrame(44, 40), nil)
	if tm.DNN <= 0 {
		t.Fatal("DNN time not recorded")
	}
	if tm.Total() != tm.DNN+tm.Other {
		t.Error("Total inconsistent")
	}
}

func TestPaperWorkloadProfile(t *testing.T) {
	c := PaperWorkload()
	// GOTURN at 227x227: FC-heavy. Head weights must dominate (EIE's
	// motivation); total weight bytes in the hundreds of MB.
	if c.FCMACs <= 0 || c.ConvMACs <= 0 {
		t.Fatal("missing MAC split")
	}
	if c.WeightBytes < 100e6 {
		t.Errorf("GOTURN weights = %d bytes, expected >100MB (FC-dominated)", c.WeightBytes)
	}
}

func TestMatchTemplateExact(t *testing.T) {
	search := img.NewGray(20, 20)
	for i := range search.Pix {
		search.Pix[i] = uint8(i * 7 % 256)
	}
	tmpl := search.Crop(img.RectWH(5, 8, 6, 6))
	dx, dy, sad := matchTemplate(search, tmpl, 0, 0)
	if dx != 5 || dy != 8 {
		t.Errorf("match at (%d,%d), want (5,8)", dx, dy)
	}
	if sad != 0 {
		t.Errorf("exact match SAD = %d, want 0", sad)
	}
}

func TestMatchTemplateOversizedTemplate(t *testing.T) {
	search := img.NewGray(5, 5)
	tmpl := img.NewGray(10, 10)
	dx, dy, _ := matchTemplate(search, tmpl, 0, 0)
	if dx != 0 || dy != 0 {
		t.Error("oversized template should return origin")
	}
}

func BenchmarkStepNoDNN(b *testing.B) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)
	f := movingSquareFrame(40, 40)
	e.Step(f, []Detection{{Box: img.RectWH(40, 40, 24, 24)}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(f, nil)
	}
}

// growingSquareFrame renders a textured square centered at (cx,cy) with the
// given side length.
func growingSquareFrame(cx, cy, side int) *img.Gray {
	f := img.NewGray(200, 160)
	f.Fill(80)
	box := img.RectCenter(float64(cx), float64(cy), float64(side), float64(side))
	f.FillRect(box, 180)
	f.StrokeRect(box, 255)
	f.FillRect(img.RectCenter(float64(cx), float64(cy), float64(side)/3, float64(side)/3), 20)
	return f
}

func TestScaleAdaptiveTracking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)

	side := 24
	e.Step(growingSquareFrame(100, 80, side),
		[]Detection{{Box: img.RectCenter(100, 80, float64(side), float64(side))}})
	// The object grows ~8% per frame (approaching) with no detections:
	// the scale-aware matcher must inflate the box.
	for i := 0; i < 6; i++ {
		side = int(float64(side) * 1.09)
		e.Step(growingSquareFrame(100, 80, side), nil)
	}
	if e.ActiveCount() != 1 {
		t.Fatal("track lost")
	}
	tr := e.Tracks()[0]
	if tr.Box.W() <= 26 {
		t.Errorf("box width %.1f did not grow with the object (now %d px)", tr.Box.W(), side)
	}
	truth := img.RectCenter(100, 80, float64(side), float64(side))
	if iou := tr.Box.IoU(truth); iou < 0.5 {
		t.Errorf("IoU with grown object = %.2f", iou)
	}
}

func TestStableScaleNoDrift(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)
	e.Step(growingSquareFrame(100, 80, 24),
		[]Detection{{Box: img.RectCenter(100, 80, 24, 24)}})
	// Constant-size object: the scale hysteresis must hold the box size.
	for i := 0; i < 8; i++ {
		e.Step(growingSquareFrame(100, 80, 24), nil)
	}
	tr := e.Tracks()[0]
	if tr.Box.W() < 18 || tr.Box.W() > 31 {
		t.Errorf("box width drifted to %.1f on a constant-size object", tr.Box.W())
	}
}

func TestDegenerateBoxHeldInPlace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)
	f := movingSquareFrame(40, 40)
	e.Step(f, []Detection{{Box: img.RectWH(10, 10, 2, 0.5)}}) // degenerate spawn
	before := e.Tracks()[0].Box
	for i := 0; i < 3; i++ {
		e.Step(movingSquareFrame(40+4*i, 40), nil) // must not panic
	}
	if e.ActiveCount() == 1 && e.Tracks()[0].Box != before {
		t.Error("degenerate box should be held in place")
	}
}

// Property: the tracked-object table never exceeds the pool size and never
// holds degenerate or non-finite boxes, whatever detections arrive.
func TestTableInvariantsProperty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 4
	cfg.RunDNN = false
	e, _ := New(cfg)
	f := movingSquareFrame(40, 40)
	prop := func(xs, ys, ws, hs [3]uint8) bool {
		var dets []Detection
		for i := 0; i < 3; i++ {
			dets = append(dets, Detection{Box: img.RectWH(
				float64(xs[i]), float64(ys[i]),
				float64(ws[i]%60), float64(hs[i]%60))})
		}
		e.Step(f, dets)
		if e.ActiveCount() > cfg.PoolSize {
			return false
		}
		for _, tr := range e.Tracks() {
			if math.IsNaN(tr.Box.X0) || math.IsInf(tr.Box.X0, 0) ||
				math.IsNaN(tr.VX) || math.IsInf(tr.VY, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestKalmanConvergesToConstantVelocity(t *testing.T) {
	var f boxFilter
	// Object moving at (3, -1) px/frame, exact measurements.
	for i := 0; i < 30; i++ {
		f.observe(float64(i*3), float64(100-i))
	}
	_, _, vx, vy := f.observe(90, 70)
	if math.Abs(vx-3) > 0.3 || math.Abs(vy-(-1)) > 0.3 {
		t.Errorf("KF velocity (%.2f, %.2f), want (3, -1)", vx, vy)
	}
}

func TestKalmanSmoothsNoise(t *testing.T) {
	// Alternating ±2 px measurement noise on a static object: the
	// filtered velocity must stay far below the raw frame-diff (±4).
	var f boxFilter
	f.observe(100, 100)
	worst := 0.0
	for i := 0; i < 40; i++ {
		noise := 2.0
		if i%2 == 1 {
			noise = -2.0
		}
		_, _, vx, _ := f.observe(100+noise, 100)
		if i > 10 && math.Abs(vx) > worst {
			worst = math.Abs(vx)
		}
	}
	if worst > 1.5 {
		t.Errorf("steady-state KF velocity |%.2f| under ±2px noise; raw diff would be 4", worst)
	}
}

func TestKalmanCoast(t *testing.T) {
	var f boxFilter
	// Uninitialized coast is inert.
	if px, py, vx, vy := f.coast(); px != 0 || py != 0 || vx != 0 || vy != 0 {
		t.Error("uninitialized coast should return zeros")
	}
	for i := 0; i < 20; i++ {
		f.observe(float64(i*2), 50)
	}
	p0, _, v0, _ := f.coast()
	p1, _, v1, _ := f.coast()
	if math.Abs((p1-p0)-v0) > 1e-9 {
		t.Errorf("coast did not advance by velocity: dp=%.3f v=%.3f", p1-p0, v0)
	}
	if math.Abs(v1-v0) > 1e-9 {
		t.Error("coast should hold velocity")
	}
}

func TestTrackVelocitySmoothed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RunDNN = false
	e, _ := New(cfg)
	// Detections every frame, center moving +4 px/frame with ±1 jitter.
	x := 40.0
	for i := 0; i < 15; i++ {
		jitter := 1.0
		if i%2 == 1 {
			jitter = -1.0
		}
		e.Step(movingSquareFrame(int(x), 40),
			[]Detection{{Box: img.RectCenter(x+12+jitter, 52, 24, 24)}})
		x += 4
	}
	tr := e.Tracks()[0]
	if math.Abs(tr.VX-4) > 1.5 {
		t.Errorf("smoothed VX = %.2f, want ~4", tr.VX)
	}
}
