package track

import (
	"testing"

	"adsim/internal/img"
)

// Tracking state comes from template matching and the Kalman filter; the
// DNN tower/head pair is executed for its latency profile. Quantized
// execution must leave the track tables bitwise-identical.
func TestQuantizedTracksIdenticalToFloat(t *testing.T) {
	type snap struct {
		ID     int
		Box    img.Rect
		VX, VY float64
		Age    int
		Misses int
	}
	run := func(quantized bool) [][]snap {
		cfg := DefaultConfig()
		cfg.Quantized = quantized
		e, _ := New(cfg)
		var tables [][]snap
		for i := 0; i < 8; i++ {
			f := movingSquareFrame(40+2*i, 40)
			var dets []Detection
			if i == 0 {
				dets = []Detection{{Box: img.RectWH(40, 40, 24, 24)}}
			}
			tracks, _ := e.Step(f, dets)
			row := make([]snap, 0, len(tracks))
			for _, tr := range tracks {
				row = append(row, snap{tr.ID, tr.Box, tr.VX, tr.VY, tr.Age, tr.Misses})
			}
			tables = append(tables, row)
		}
		return tables
	}

	want := run(false)
	got := run(true)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("frame %d: %d tracks quantized vs %d float", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("frame %d: track[%d] = %+v quantized vs %+v float",
					i, j, got[i][j], want[i][j])
			}
		}
	}
}

// Alloc gate (run by `make alloc-gate`): the warm single-track DNN step
// must stay within a small budget over the no-DNN floor (pool round-trip
// plus bookkeeping), not the per-layer tensor churn the arena replaced.
func TestAllocTrackSteadyState(t *testing.T) {
	step := func(e *Engine) {
		e.Step(movingSquareFrame(44, 40), nil)
	}
	mk := func(dnn bool) *Engine {
		cfg := DefaultConfig()
		cfg.RunDNN = dnn
		e, _ := New(cfg)
		e.Step(movingSquareFrame(40, 40), []Detection{{Box: img.RectWH(40, 40, 24, 24)}})
		step(e) // warm pool + template buffers
		return e
	}
	eBase := mk(false)
	eDNN := mk(true)
	noDNN := testing.AllocsPerRun(10, func() { step(eBase) })
	withDNN := testing.AllocsPerRun(10, func() { step(eDNN) })
	if delta := withDNN - noDNN; delta > 6 {
		t.Errorf("DNN adds %.1f allocs/step over the no-DNN floor (%.1f vs %.1f), want <= 6",
			delta, withDNN, noDNN)
	}
}
