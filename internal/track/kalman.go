package track

// A constant-velocity Kalman filter over box-center position, maintained
// per track. Raw frame-to-frame center differences are noisy (template
// quantization, detection jitter); the fusion engine and the motion
// planner's constant-velocity obstacle extrapolation both consume track
// velocity, so smoothing it materially improves plan stability.
//
// State x = [cx, cy, vx, vy]ᵀ, measurement z = [cx, cy]ᵀ. With the
// position/velocity blocks independent per axis, the 4x4 filter decomposes
// into two identical 2x2 filters, which is how it is implemented.

// kalman2 is a 1-axis position/velocity Kalman filter.
type kalman2 struct {
	pos, vel float64
	// Covariance [[pPP, pPV], [pPV, pVV]].
	pPP, pPV, pVV float64
}

// Filter noise parameters, in pixels: process noise accounts for
// maneuvering targets, measurement noise for box-center jitter.
const (
	kfProcessNoise = 1.0 // accel std-dev, px/frame²
	kfMeasNoise    = 2.0 // center measurement std-dev, px
)

// newKalman2 initializes at a measured position with zero velocity and
// wide velocity uncertainty.
func newKalman2(pos float64) kalman2 {
	return kalman2{
		pos: pos,
		pPP: kfMeasNoise * kfMeasNoise,
		pVV: 25, // ±5 px/frame initial velocity uncertainty
	}
}

// predict advances one frame under the constant-velocity model.
func (k *kalman2) predict() {
	k.pos += k.vel
	// P = F P Fᵀ + Q with F = [[1,1],[0,1]] and white-acceleration Q.
	q := kfProcessNoise * kfProcessNoise
	pPP := k.pPP + 2*k.pPV + k.pVV + q/4
	pPV := k.pPV + k.pVV + q/2
	pVV := k.pVV + q
	k.pPP, k.pPV, k.pVV = pPP, pPV, pVV
}

// update fuses a position measurement.
func (k *kalman2) update(z float64) {
	r := kfMeasNoise * kfMeasNoise
	s := k.pPP + r
	gP := k.pPP / s
	gV := k.pPV / s
	innov := z - k.pos
	k.pos += gP * innov
	k.vel += gV * innov
	// Joseph-free covariance update (standard form).
	pPP := (1 - gP) * k.pPP
	pPV := (1 - gP) * k.pPV
	pVV := k.pVV - gV*k.pPV
	k.pPP, k.pPV, k.pVV = pPP, pPV, pVV
}

// boxFilter is the per-track 2-axis filter.
type boxFilter struct {
	x, y kalman2
	init bool
}

// observe feeds a measured box center; the first observation initializes.
// It returns the filtered center and velocity.
func (f *boxFilter) observe(cx, cy float64) (px, py, vx, vy float64) {
	if !f.init {
		f.x = newKalman2(cx)
		f.y = newKalman2(cy)
		f.init = true
		return cx, cy, 0, 0
	}
	f.x.predict()
	f.y.predict()
	f.x.update(cx)
	f.y.update(cy)
	return f.x.pos, f.y.pos, f.x.vel, f.y.vel
}

// coast advances the filter without a measurement (occlusion/miss) and
// returns the predicted center and velocity.
func (f *boxFilter) coast() (px, py, vx, vy float64) {
	if !f.init {
		return 0, 0, 0, 0
	}
	f.x.predict()
	f.y.predict()
	return f.x.pos, f.y.pos, f.x.vel, f.y.vel
}
