// Package track implements the object-tracking engine (TRA) of the
// pipeline — the paper's GOTURN stage.
//
// Architecture follows the paper's description: a pool of single-object
// trackers is launched up front to avoid initialization overhead, and a
// tracked-object table records the objects currently being tracked; an
// object that fails to appear in ten consecutive frames is dropped and its
// tracker returns to the idle pool.
//
// Like the detection engine, each tracker couples a computational path (a
// GOTURN-shaped two-branch network executed natively at tiny scale, with the
// paper-scale GOTURN cost profile exported for the platform models) with a
// functional path (template matching of the previous target crop inside the
// current search region — the same crop geometry GOTURN uses).
package track

import (
	"fmt"
	"math"
	"sync"
	"time"

	"adsim/internal/dnn"
	"adsim/internal/img"
	"adsim/internal/scene"
	"adsim/internal/tensor"
)

// MissLimit is the number of consecutive frames an object may go undetected
// before it is removed from the tracked-object table (the paper uses ten).
const MissLimit = 10

// Track is one entry in the tracked-object table.
type Track struct {
	ID    int
	Class scene.Class
	Box   img.Rect
	// VX, VY is the box-center velocity in pixels/frame, smoothed by a
	// per-track constant-velocity Kalman filter (raw frame differences
	// are too jittery for the planner's obstacle extrapolation).
	VX, VY float64
	Age    int // frames since the track was created
	Misses int // consecutive frames without a supporting detection

	filter boxFilter
}

// Timing is the DNN-vs-other time breakdown of one engine invocation.
type Timing struct {
	DNN   time.Duration
	Other time.Duration
}

// Total returns DNN + Other.
func (t Timing) Total() time.Duration { return t.DNN + t.Other }

// Config parameterizes the tracking engine.
type Config struct {
	// PoolSize is the number of pre-launched trackers and hence the
	// maximum number of simultaneously tracked objects.
	PoolSize int
	// SearchScale is the factor by which the previous box is inflated to
	// form the search region (GOTURN uses 2).
	SearchScale float64
	// TemplateSize is the square resolution templates are matched at.
	TemplateSize int
	// AssocIoU is the minimum IoU for associating a detection with an
	// existing track.
	AssocIoU float64
	// RunDNN controls whether the native network executes per tracked
	// object.
	RunDNN bool
	// Quantized runs the network through the int8 inference path instead
	// of float32. Track results are unaffected (boxes come from template
	// matching); only the computational profile changes.
	Quantized bool
	// Executor runs the network's forward passes. nil uses dnn.Default().
	// A fleet shares one batching executor across many engines so
	// concurrent same-shape calls gather into one batched GEMM.
	Executor *dnn.Executor
	// Nets, when non-nil, is a shared network cache: engines drawing from
	// one cache hold the SAME tower/head networks instead of private
	// identical copies, which is what lets the executor's gather seam batch
	// forward calls across co-resident streams (the seam groups on the
	// network pointer). nil keeps networks private.
	Nets *dnn.NetCache
}

// DefaultConfig returns the standard tracking configuration.
func DefaultConfig() Config {
	return Config{
		PoolSize:     16,
		SearchScale:  2.0,
		TemplateSize: 16,
		AssocIoU:     0.3,
		RunDNN:       true,
	}
}

// Engine is the TRA engine: tracker pool plus tracked-object table.
// Step must be called from one goroutine at a time (the table is stateful),
// but internally Step fans each live track's propagation out to its own
// goroutine — the paper's pre-launched tracker-pool design.
type Engine struct {
	cfg    Config
	tower  *dnn.Network
	head   *dnn.Network
	exec   *dnn.Executor
	nextID int

	tracks    []*Track
	prevFrame *img.Gray
	scratch   sync.Pool // of *trackScratch, one per concurrent propagate
}

// trackScratch is the per-propagate buffer set: crop/resize images, the
// network input tensor and the layer arena. Each concurrent tracker
// goroutine takes its own from the pool, so the steady-state propagate is
// allocation-free.
type trackScratch struct {
	s      dnn.Scratch
	target img.Gray // previous-frame target crop
	search img.Gray // current-frame search-region crop
	tSmall img.Gray // target at template resolution
	sSmall img.Gray // search at template resolution
	tmpl   img.Gray // scaled template candidates
	net    img.Gray // network-input resolution staging
	input  *tensor.T
}

// New constructs a tracking engine.
func New(cfg Config) (*Engine, error) {
	if cfg.PoolSize <= 0 {
		return nil, fmt.Errorf("track: PoolSize %d must be positive", cfg.PoolSize)
	}
	if cfg.SearchScale <= 1 {
		return nil, fmt.Errorf("track: SearchScale %v must exceed 1", cfg.SearchScale)
	}
	if cfg.TemplateSize < 4 {
		return nil, fmt.Errorf("track: TemplateSize %d too small", cfg.TemplateSize)
	}
	e := &Engine{cfg: cfg, exec: cfg.Executor}
	if e.exec == nil {
		e.exec = dnn.Default()
	}
	if cfg.RunDNN {
		e.tower = cfg.Nets.Get("tiny-tracker-tower", 32, dnn.TinyTrackerTower)
		e.head = cfg.Nets.Get("tiny-tracker-head", 32, func(int) *dnn.Network {
			return dnn.TinyTrackerHead(e.tower.OutShape())
		})
	}
	return e, nil
}

// PaperWorkload returns the paper-scale TRA cost: one GOTURN inference
// (two CaffeNet tower passes plus the FC regression head) per tracked
// object per frame.
func PaperWorkload() dnn.Cost {
	tower := dnn.GOTURNTower(227)
	head := dnn.GOTURNHead(tower.OutShape())
	return dnn.TrackerCost(tower, head)
}

// Tracks returns a deep-copied snapshot of the tracked-object table. The
// snapshot is immune to subsequent Step calls: callers may hold frame N's
// tracks while frame N+1 advances the engine (the pipelined runner does
// exactly that), without frame N's boxes mutating retroactively.
func (e *Engine) Tracks() []*Track { return e.snapshot() }

// snapshot deep-copies the live table.
func (e *Engine) snapshot() []*Track {
	out := make([]*Track, len(e.tracks))
	for i, tr := range e.tracks {
		cp := *tr
		out[i] = &cp
	}
	return out
}

// ActiveCount reports the number of tracked objects.
func (e *Engine) ActiveCount() int { return len(e.tracks) }

// IdleTrackers reports how many pool slots are free.
func (e *Engine) IdleTrackers() int { return e.cfg.PoolSize - len(e.tracks) }

// Detection is the minimal view of a detector output the engine needs;
// it mirrors detect.Detection without importing the package (keeping the
// dependency arrow pipeline→{detect,track} one-directional).
type Detection struct {
	Box   img.Rect
	Class scene.Class
}

// Step advances the tracked-object table by one frame: every live track is
// propagated by template matching (and the DNN path when enabled), then the
// frame's detections are associated to tracks, spawning new tracks for
// unmatched detections while idle trackers remain and aging out tracks that
// have missed MissLimit consecutive frames.
//
// It returns a deep-copied snapshot of the table after the step together
// with the step's time breakdown, so callers never read engine state that a
// later frame may overwrite. The returned Timing sums per-tracker durations
// (total tracker-pool work, not wall time, when trackers run in parallel).
func (e *Engine) Step(frame *img.Gray, detections []Detection) ([]*Track, Timing) {
	var dnnDur, otherDur time.Duration

	// 1. Propagate existing tracks on the new frame (GOTURN step), one
	// goroutine per tracked object — the paper's tracker-pool design. Each
	// tracker mutates only its own Track; the shared DNN tower/head are
	// safe for concurrent Forward calls, and per-track results do not
	// depend on each other, so the outcome is order-independent.
	if e.prevFrame != nil && len(e.tracks) > 0 {
		if len(e.tracks) == 1 {
			dnnDur, otherDur = e.propagate(e.tracks[0], frame)
		} else {
			type span struct{ dnn, other time.Duration }
			spans := make([]span, len(e.tracks))
			var wg sync.WaitGroup
			wg.Add(len(e.tracks))
			for i, tr := range e.tracks {
				go func(i int, tr *Track) {
					defer wg.Done()
					d, o := e.propagate(tr, frame)
					spans[i] = span{dnn: d, other: o}
				}(i, tr)
			}
			wg.Wait()
			for _, s := range spans {
				dnnDur += s.dnn
				otherDur += s.other
			}
		}
	}

	// 2. Associate detections to tracks (greedy best-IoU).
	assocStart := time.Now()
	usedDet := make([]bool, len(detections))
	for _, tr := range e.tracks {
		bestIoU := e.cfg.AssocIoU
		bestIdx := -1
		for i, det := range detections {
			if usedDet[i] {
				continue
			}
			if iou := tr.Box.IoU(det.Box); iou > bestIoU {
				bestIoU = iou
				bestIdx = i
			}
		}
		if bestIdx >= 0 {
			det := detections[bestIdx]
			usedDet[bestIdx] = true
			tr.Box = det.Box
			tr.Class = det.Class
			tr.Misses = 0
		} else {
			tr.Misses++
		}
		tr.Age++
	}

	// Velocity estimation: each live track's final box center for this
	// frame is one measurement for its Kalman filter.
	for _, tr := range e.tracks {
		cx, cy := tr.Box.Center()
		_, _, vx, vy := tr.filter.observe(cx, cy)
		tr.VX, tr.VY = vx, vy
	}

	// 3. Expire stale tracks, freeing their pool slots.
	live := e.tracks[:0]
	for _, tr := range e.tracks {
		if tr.Misses < MissLimit {
			live = append(live, tr)
		}
	}
	e.tracks = live

	// 4. Spawn new tracks for unmatched detections while trackers remain.
	for i, det := range detections {
		if usedDet[i] || len(e.tracks) >= e.cfg.PoolSize {
			continue
		}
		e.nextID++
		tr := &Track{ID: e.nextID, Class: det.Class, Box: det.Box}
		cx, cy := det.Box.Center()
		tr.filter.observe(cx, cy) // initialize the velocity filter
		e.tracks = append(e.tracks, tr)
	}
	otherDur += time.Since(assocStart)

	e.prevFrame = frame
	return e.snapshot(), Timing{DNN: dnnDur, Other: otherDur}
}

// propagate runs one GOTURN-style tracking step for tr on the new frame,
// returning the DNN and non-DNN durations.
func (e *Engine) propagate(tr *Track, frame *img.Gray) (dnnDur, otherDur time.Duration) {
	// Degenerate boxes (shrunk by repeated scale-down steps or clipped at
	// the frame edge) cannot be matched; hold them in place and let the
	// miss counter retire the track.
	if tr.Box.W() < 4 || tr.Box.H() < 4 {
		return 0, 0
	}
	startOther := time.Now()
	sc, _ := e.scratch.Get().(*trackScratch)
	if sc == nil {
		sc = &trackScratch{input: tensor.New(1, 32, 32)}
	}
	defer e.scratch.Put(sc)
	sc.s.Quantized = e.cfg.Quantized

	// Crop previous target and current search region (GOTURN geometry).
	target := e.prevFrame.CropInto(&sc.target, tr.Box)
	search := frame.CropInto(&sc.search, tr.Box.Scale(e.cfg.SearchScale))

	ts := e.cfg.TemplateSize
	ss := int(float64(ts) * e.cfg.SearchScale)
	targetSmall := target.ResizeInto(&sc.tSmall, ts, ts)
	searchSmall := search.ResizeInto(&sc.sSmall, ss, ss)
	otherDur += time.Since(startOther)

	// Computational path: two-branch network + FC head. The two tower
	// passes share one arena, so branch A's features are copied into a held
	// concat slot before branch B's pass reuses the ping-pong buffers.
	if e.cfg.RunDNN {
		startDNN := time.Now()
		a := e.exec.Forward(e.tower, toTensorInto(sc.input, targetSmall.ResizeInto(&sc.net, 32, 32)), &sc.s)
		n := a.Len()
		concat := sc.s.Hold(0, 2*n, 1, 1)
		copy(concat.Data[:n], a.Data)
		b := e.exec.Forward(e.tower, toTensorInto(sc.input, searchSmall.ResizeInto(&sc.net, 32, 32)), &sc.s)
		copy(concat.Data[n:], b.Data)
		_ = e.exec.Forward(e.head, concat, &sc.s)
		dnnDur = time.Since(startDNN)
	}

	// Functional path: SAD template matching inside the search region,
	// evaluated at three candidate scales — GOTURN regresses position and
	// extent, and objects the vehicle approaches grow frame over frame.
	startMatch := time.Now()
	bestSAD := int64(1) << 62
	bestDx, bestDy := 0, 0
	bestTs := ts
	for _, scale := range [...]float64{1.0, 1.08, 1.0 / 1.08} {
		sts := int(math.Round(float64(ts) * scale))
		if sts < 4 || sts > ss {
			continue
		}
		tmpl := targetSmall
		if sts != ts {
			tmpl = target.ResizeInto(&sc.tmpl, sts, sts)
		}
		nominal := (ss - sts) / 2 // offset corresponding to zero motion
		dx, dy, sad := matchTemplate(searchSmall, tmpl, nominal, nominal)
		// Normalize by template area so scales compete fairly, with a
		// mild preference for keeping the current scale.
		norm := sad / int64(sts*sts)
		if scale != 1.0 {
			norm = norm + norm/16
		}
		if norm < bestSAD {
			bestSAD = norm
			bestDx, bestDy, bestTs = dx, dy, sts
		}
	}
	// Map the template offset back to frame coordinates. The search region
	// spans Box.Scale(SearchScale); template (0-offset) corresponds to the
	// search region's top-left corner.
	region := tr.Box.Scale(e.cfg.SearchScale).Clip(0, 0, frame.W, frame.H)
	if !region.Empty() {
		scaleX := region.W() / float64(ss)
		scaleY := region.H() / float64(ss)
		newX0 := region.X0 + float64(bestDx)*scaleX
		newY0 := region.Y0 + float64(bestDy)*scaleY
		newW := tr.Box.W() * float64(bestTs) / float64(ts)
		newH := tr.Box.H() * float64(bestTs) / float64(ts)
		tr.Box = img.RectWH(newX0, newY0, newW, newH)
	}
	otherDur += time.Since(startMatch)
	return dnnDur, otherDur
}

// matchTemplate slides tmpl over search (both grayscale) and returns the
// offset minimizing the sum of absolute differences, plus that SAD. Ties
// are broken toward (nx,ny), the offset corresponding to zero motion, so
// featureless regions do not cause the tracker to drift.
func matchTemplate(search, tmpl *img.Gray, nx, ny int) (dx, dy int, best int64) {
	bestSAD := int64(1) << 62
	bestDist := int64(1) << 62
	maxY := search.H - tmpl.H
	maxX := search.W - tmpl.W
	if maxY < 0 || maxX < 0 {
		return 0, 0, bestSAD
	}
	for oy := 0; oy <= maxY; oy++ {
		for ox := 0; ox <= maxX; ox++ {
			var sad int64
			for ty := 0; ty < tmpl.H; ty++ {
				srow := (oy+ty)*search.W + ox
				trow := ty * tmpl.W
				for tx := 0; tx < tmpl.W; tx++ {
					d := int64(search.Pix[srow+tx]) - int64(tmpl.Pix[trow+tx])
					if d < 0 {
						d = -d
					}
					sad += d
				}
				if sad > bestSAD {
					break // early exit: already worse than best
				}
			}
			ddx, ddy := int64(ox-nx), int64(oy-ny)
			dist := ddx*ddx + ddy*ddy
			if sad < bestSAD || (sad == bestSAD && dist < bestDist) {
				bestSAD, bestDist = sad, dist
				dx, dy = ox, oy
			}
		}
	}
	return dx, dy, bestSAD
}

// toTensorInto normalizes g's pixels into t, which must already have
// g.W×g.H elements.
func toTensorInto(t *tensor.T, g *img.Gray) *tensor.T {
	for i, p := range g.Pix {
		t.Data[i] = float32(p) / 255
	}
	return t
}
