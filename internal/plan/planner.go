package plan

// Planner is the MOTPLAN engine object: it owns a base ConformalConfig and
// plans one frame at a time, optionally under a per-frame target-speed
// override (how mission guidance — speed limits, stop-line ramps — shapes
// the motion plan without mutating the base configuration). Wrapping the
// free PlanConformal function in an engine gives MOTPLAN the same shape as
// the other engines, so the stage graph can treat all seven uniformly.
//
// Planner is stateless frame-to-frame and safe for sequential reuse.
type Planner struct {
	cfg ConformalConfig
}

// NewPlanner returns a MOTPLAN engine planning under cfg.
func NewPlanner(cfg ConformalConfig) *Planner { return &Planner{cfg: cfg} }

// StageName identifies the motion planner in the pipeline's declarative
// stage graph and in telemetry spans (implements telemetry.Stage).
func (p *Planner) StageName() string { return "MOTPLAN" }

// Config returns the base configuration.
func (p *Planner) Config() ConformalConfig { return p.cfg }

// Plan plans from ego position (x, z) against the fused obstacles.
// targetSpeed > 0 overrides the configured target speed for this frame
// only; <= 0 keeps the base target speed.
func (p *Planner) Plan(x, z float64, obstacles []Obstacle, targetSpeed float64) (ConformalResult, error) {
	cfg := p.cfg
	if targetSpeed > 0 {
		cfg.TargetSpeed = targetSpeed
	}
	return PlanConformal(cfg, x, z, obstacles)
}
