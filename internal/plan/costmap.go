// Package plan implements the motion-planning engine (MOTPLAN) of the
// pipeline, following the two-planner design the paper adopts from
// Autoware: a graph-search state lattice for large open (unstructured)
// areas such as parking lots [Pivtoraiko et al.], and a conformal
// spatiotemporal lattice for structured roads [McNaughton et al.], which
// adapts candidate trajectories to the lane geometry and to the predicted
// motion of tracked obstacles.
package plan

import (
	"fmt"
	"math"
)

// Obstacle is one planning-relevant object in the world frame: position,
// physical radius and a constant-velocity motion estimate (from the fusion
// engine's tracked objects).
type Obstacle struct {
	X, Z   float64 // position (m)
	Radius float64 // inflation radius (m)
	VX, VZ float64 // velocity (m/s)
}

// At returns the obstacle center extrapolated t seconds ahead under the
// constant-velocity model.
func (o Obstacle) At(t float64) (x, z float64) {
	return o.X + o.VX*t, o.Z + o.VZ*t
}

// Costmap is a 2D occupancy/cost grid over a world-frame rectangle, used by
// the unstructured (state-lattice) planner. Cell values are travel costs:
// 0 free, +Inf lethal, intermediate values from obstacle inflation.
type Costmap struct {
	OriginX, OriginZ float64 // world position of cell (0,0)'s corner
	Res              float64 // cell edge length (m)
	W, H             int     // cells in X and Z
	cells            []float64
}

// NewCostmap allocates a free costmap of W×H cells with the given origin
// and resolution.
func NewCostmap(originX, originZ, res float64, w, h int) (*Costmap, error) {
	if res <= 0 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("plan: invalid costmap res=%v %dx%d", res, w, h)
	}
	return &Costmap{OriginX: originX, OriginZ: originZ, Res: res, W: w, H: h,
		cells: make([]float64, w*h)}, nil
}

// Index converts a world position to cell coordinates; ok is false outside
// the map.
func (c *Costmap) Index(x, z float64) (ix, iz int, ok bool) {
	ix = int(math.Floor((x - c.OriginX) / c.Res))
	iz = int(math.Floor((z - c.OriginZ) / c.Res))
	return ix, iz, ix >= 0 && iz >= 0 && ix < c.W && iz < c.H
}

// CostAt returns the cell cost at a world position. Positions outside the
// map are lethal, so the planner cannot wander off the known world.
func (c *Costmap) CostAt(x, z float64) float64 {
	ix, iz, ok := c.Index(x, z)
	if !ok {
		return math.Inf(1)
	}
	return c.cells[iz*c.W+ix]
}

// SetCost writes a cell cost by cell coordinates (ignored out of bounds).
func (c *Costmap) SetCost(ix, iz int, v float64) {
	if ix < 0 || iz < 0 || ix >= c.W || iz >= c.H {
		return
	}
	c.cells[iz*c.W+ix] = v
}

// AddObstacle marks cells within the obstacle's radius lethal and applies a
// linearly decaying soft cost out to 2× radius, the usual inflation layer.
func (c *Costmap) AddObstacle(o Obstacle) {
	if o.Radius <= 0 {
		return
	}
	soft := 2 * o.Radius
	x0, z0, _ := c.Index(o.X-soft, o.Z-soft)
	x1, z1, _ := c.Index(o.X+soft, o.Z+soft)
	for iz := z0; iz <= z1; iz++ {
		for ix := x0; ix <= x1; ix++ {
			if ix < 0 || iz < 0 || ix >= c.W || iz >= c.H {
				continue
			}
			cx := c.OriginX + (float64(ix)+0.5)*c.Res
			cz := c.OriginZ + (float64(iz)+0.5)*c.Res
			d := math.Hypot(cx-o.X, cz-o.Z)
			idx := iz*c.W + ix
			switch {
			case d <= o.Radius:
				c.cells[idx] = math.Inf(1)
			case d <= soft:
				v := 10 * (1 - (d-o.Radius)/o.Radius)
				if v > c.cells[idx] {
					c.cells[idx] = v
				}
			}
		}
	}
}

// Lethal reports whether the world position is untraversable.
func (c *Costmap) Lethal(x, z float64) bool { return math.IsInf(c.CostAt(x, z), 1) }
