package plan

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostmapValidation(t *testing.T) {
	if _, err := NewCostmap(0, 0, 0, 10, 10); err == nil {
		t.Error("zero resolution accepted")
	}
	if _, err := NewCostmap(0, 0, 0.5, 0, 10); err == nil {
		t.Error("zero width accepted")
	}
}

func TestCostmapIndexAndBounds(t *testing.T) {
	cm, _ := NewCostmap(-5, 0, 0.5, 20, 40) // covers x [-5,5), z [0,20)
	ix, iz, ok := cm.Index(0, 10)
	if !ok || ix != 10 || iz != 20 {
		t.Errorf("Index(0,10) = (%d,%d,%v)", ix, iz, ok)
	}
	if _, _, ok := cm.Index(-6, 10); ok {
		t.Error("out-of-bounds X accepted")
	}
	if !math.IsInf(cm.CostAt(100, 100), 1) {
		t.Error("outside cost should be lethal")
	}
}

func TestCostmapObstacleInflation(t *testing.T) {
	cm, _ := NewCostmap(-10, -10, 0.5, 40, 40)
	cm.AddObstacle(Obstacle{X: 0, Z: 0, Radius: 1})
	if !cm.Lethal(0, 0) {
		t.Error("obstacle center not lethal")
	}
	if !cm.Lethal(0.7, 0) {
		t.Error("inside radius not lethal")
	}
	soft := cm.CostAt(0, 1.4) // between radius and 2*radius
	if soft <= 0 || math.IsInf(soft, 1) {
		t.Errorf("soft inflation cost = %v", soft)
	}
	if cm.CostAt(5, 5) != 0 {
		t.Error("far cell should be free")
	}
}

func TestObstacleExtrapolation(t *testing.T) {
	o := Obstacle{X: 1, Z: 2, VX: 0.5, VZ: -1}
	x, z := o.At(2)
	if x != 2 || z != 0 {
		t.Errorf("At(2) = (%v,%v), want (2,0)", x, z)
	}
}

func TestLatticeStraightPath(t *testing.T) {
	cm, _ := NewCostmap(-10, -10, 0.5, 40, 80)
	p, err := PlanLattice(cm, DefaultLatticeConfig(), 0, -5, 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Waypoints) < 10 {
		t.Fatalf("path too short: %d waypoints", len(p.Waypoints))
	}
	last := p.Waypoints[len(p.Waypoints)-1]
	if math.Hypot(last.X, last.Z-20) > 1.5 {
		t.Errorf("path ends at (%v,%v), want near (0,20)", last.X, last.Z)
	}
	// A straight corridor should yield a near-straight path.
	if p.Length() > 27 {
		t.Errorf("straight path length %.1f, want ~25", p.Length())
	}
}

func TestLatticeAvoidsObstacle(t *testing.T) {
	cm, _ := NewCostmap(-10, -10, 0.5, 40, 80)
	obst := Obstacle{X: 0, Z: 5, Radius: 2}
	cm.AddObstacle(obst)
	p, err := PlanLattice(cm, DefaultLatticeConfig(), 0, -5, 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range p.Waypoints {
		if math.Hypot(wp.X-obst.X, wp.Z-obst.Z) < obst.Radius {
			t.Fatalf("waypoint (%v,%v) inside obstacle", wp.X, wp.Z)
		}
	}
	// Detour must be longer than the straight line.
	if p.Length() <= 25 {
		t.Errorf("detour length %.1f suspiciously short", p.Length())
	}
}

func TestLatticeRejectsBadQueries(t *testing.T) {
	cm, _ := NewCostmap(-10, -10, 0.5, 40, 40)
	if _, err := PlanLattice(cm, DefaultLatticeConfig(), -50, 0, 0, 0, 5); err == nil {
		t.Error("outside start accepted")
	}
	if _, err := PlanLattice(cm, DefaultLatticeConfig(), 0, 0, 0, 50, 50); err == nil {
		t.Error("outside goal accepted")
	}
	cm.AddObstacle(Obstacle{X: 5, Z: 5, Radius: 1})
	if _, err := PlanLattice(cm, DefaultLatticeConfig(), 0, 0, 0, 5, 5); err == nil {
		t.Error("occupied goal accepted")
	}
}

func TestLatticeNoPathThroughWall(t *testing.T) {
	cm, _ := NewCostmap(-10, -10, 0.5, 40, 80)
	// Wall across the full width at z=5.
	for x := -10.0; x < 10; x += 0.4 {
		cm.AddObstacle(Obstacle{X: x, Z: 5, Radius: 0.6})
	}
	if _, err := PlanLattice(cm, DefaultLatticeConfig(), 0, -5, 0, 0, 20); err == nil {
		t.Error("path found through a solid wall")
	}
}

func TestLatticeTurnCostPrefersStraight(t *testing.T) {
	cm, _ := NewCostmap(-10, -10, 0.5, 40, 80)
	p, err := PlanLattice(cm, DefaultLatticeConfig(), 0, -5, 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	turns := 0
	for i := 1; i < len(p.Waypoints); i++ {
		if p.Waypoints[i].Theta != p.Waypoints[i-1].Theta {
			turns++
		}
	}
	if turns > 2 {
		t.Errorf("straight corridor path has %d heading changes", turns)
	}
}

func TestConformalValidation(t *testing.T) {
	bad := DefaultConformalConfig()
	bad.Stations = 1
	if _, err := PlanConformal(bad, 0, 0, nil); err == nil {
		t.Error("1 station accepted")
	}
	bad2 := DefaultConformalConfig()
	bad2.LateralOffsets = nil
	if _, err := PlanConformal(bad2, 0, 0, nil); err == nil {
		t.Error("no offsets accepted")
	}
	bad3 := DefaultConformalConfig()
	bad3.TargetSpeed = 0
	if _, err := PlanConformal(bad3, 0, 0, nil); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestConformalKeepsLaneWhenClear(t *testing.T) {
	res, err := PlanConformal(DefaultConformalConfig(), 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != KeepLane {
		t.Errorf("decision = %v, want keep-lane", res.Decision)
	}
	for _, wp := range res.Path.Waypoints {
		if wp.X != 0 {
			t.Fatalf("clear road should stay on centerline; waypoint X=%v", wp.X)
		}
	}
	if res.Speed != DefaultConformalConfig().TargetSpeed {
		t.Errorf("speed = %v, want target", res.Speed)
	}
}

func TestConformalNudgesAroundStaticObstacle(t *testing.T) {
	cfg := DefaultConformalConfig()
	// Static obstacle dead ahead in our corridor.
	obst := []Obstacle{{X: 0, Z: 18, Radius: 1}}
	res, err := PlanConformal(cfg, 0, 0, obst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != NudgeLeft && res.Decision != NudgeRight {
		t.Fatalf("decision = %v, want a nudge", res.Decision)
	}
	// The path must clear the obstacle.
	for _, wp := range res.Path.Waypoints {
		if math.Hypot(wp.X-obst[0].X, wp.Z-obst[0].Z) < cfg.SafetyMargin {
			t.Fatalf("waypoint (%v,%v) violates safety margin", wp.X, wp.Z)
		}
	}
}

func TestConformalAvoidsMovingObstacle(t *testing.T) {
	cfg := DefaultConformalConfig()
	// Obstacle crossing from the left, reaching our lane right when we
	// arrive at z≈20 (t≈1.5s at 13 m/s): x = -6 + 4*1.5 = 0.
	obst := []Obstacle{{X: -6, Z: 20, Radius: 1, VX: 4}}
	res, err := PlanConformal(cfg, 0, 0, obst)
	if err != nil {
		t.Fatal(err)
	}
	// The spatiotemporal planner must not occupy the collision point at
	// the collision time.
	for i, wp := range res.Path.Waypoints {
		tArr := float64(i+1) * cfg.StationStep / cfg.TargetSpeed
		ox, oz := obst[0].At(tArr)
		if math.Hypot(wp.X-ox, wp.Z-oz) < cfg.SafetyMargin {
			t.Fatalf("station %d collides with moving obstacle", i)
		}
	}
	_ = res
}

func TestConformalBrakesBehindSlowLead(t *testing.T) {
	cfg := DefaultConformalConfig()
	// Wall of obstacles across all offsets close ahead: no lateral escape.
	var obst []Obstacle
	for x := -4.5; x <= 4.5; x += 1.0 {
		obst = append(obst, Obstacle{X: x, Z: 9, Radius: 1, VZ: cfg.TargetSpeed})
	}
	// Moving at target speed: never collides spatially with later stations
	// (it outruns us), but sits within FollowGap at t=0.
	res, err := PlanConformal(cfg, 0, 0, obst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Brake {
		t.Errorf("decision = %v, want brake", res.Decision)
	}
	if res.Speed >= cfg.TargetSpeed {
		t.Errorf("brake speed %v not reduced", res.Speed)
	}
}

func TestConformalEmergencyStopWhenFullyBlocked(t *testing.T) {
	cfg := DefaultConformalConfig()
	// Static wall across every offset at the first station.
	var obst []Obstacle
	for x := -6.0; x <= 6.0; x += 0.8 {
		obst = append(obst, Obstacle{X: x, Z: cfg.StationStep, Radius: 1.5})
	}
	res, err := PlanConformal(cfg, 0, 0, obst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != EmergencyStop {
		t.Errorf("decision = %v, want emergency-stop", res.Decision)
	}
}

func TestConformalTruncatedHorizonSlows(t *testing.T) {
	cfg := DefaultConformalConfig()
	// Wall far downstream: reachable prefix exists, full horizon blocked.
	var obst []Obstacle
	for x := -6.0; x <= 6.0; x += 0.8 {
		obst = append(obst, Obstacle{X: x, Z: 30, Radius: 1.5})
	}
	res, err := PlanConformal(cfg, 0, 0, obst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Brake {
		t.Errorf("decision = %v, want brake (truncated horizon)", res.Decision)
	}
	if res.Speed >= cfg.TargetSpeed {
		t.Error("truncated horizon should reduce speed")
	}
	if len(res.Path.Waypoints) >= cfg.Stations {
		t.Error("blocked horizon should truncate the path")
	}
}

func TestConformalHeadingsConsistent(t *testing.T) {
	res, err := PlanConformal(DefaultConformalConfig(), 0, 0, []Obstacle{{X: 0, Z: 18, Radius: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Path.Waypoints); i++ {
		a, b := res.Path.Waypoints[i-1], res.Path.Waypoints[i]
		want := math.Atan2(b.X-a.X, b.Z-a.Z)
		if math.Abs(b.Theta-want) > 1e-9 {
			t.Fatalf("waypoint %d heading %.3f, want %.3f", i, b.Theta, want)
		}
	}
}

// Property: with random non-blocking obstacles the planner always returns a
// safe path or an explicit stop — never a waypoint violating the margin at
// its arrival time.
func TestConformalSafetyProperty(t *testing.T) {
	cfg := DefaultConformalConfig()
	f := func(xs, zs [4]uint8) bool {
		var obst []Obstacle
		for i := 0; i < 4; i++ {
			obst = append(obst, Obstacle{
				X:      float64(xs[i]%16) - 8,
				Z:      float64(zs[i]%40) + 3,
				Radius: 1,
			})
		}
		res, err := PlanConformal(cfg, 0, 0, obst)
		if err != nil {
			return false
		}
		if res.Decision == EmergencyStop {
			return true
		}
		for i, wp := range res.Path.Waypoints {
			tArr := float64(i+1) * cfg.StationStep / cfg.TargetSpeed
			for _, o := range obst {
				ox, oz := o.At(tArr)
				if math.Hypot(wp.X-ox, wp.Z-oz) < cfg.SafetyMargin+o.Radius-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		KeepLane: "keep-lane", NudgeLeft: "nudge-left", NudgeRight: "nudge-right",
		Brake: "brake", EmergencyStop: "emergency-stop",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
}

func TestPathLength(t *testing.T) {
	p := Path{Waypoints: []Waypoint{{X: 0, Z: 0}, {X: 3, Z: 4}, {X: 3, Z: 9}}}
	if p.Length() != 10 {
		t.Errorf("length = %v, want 10", p.Length())
	}
	if (Path{}).Length() != 0 {
		t.Error("empty path length should be 0")
	}
}

func BenchmarkPlanConformal(b *testing.B) {
	cfg := DefaultConformalConfig()
	obst := []Obstacle{{X: 0, Z: 18, Radius: 1}, {X: -2, Z: 30, Radius: 1, VZ: 5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanConformal(cfg, 0, 0, obst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanLattice(b *testing.B) {
	cm, _ := NewCostmap(-10, -10, 0.5, 40, 80)
	cm.AddObstacle(Obstacle{X: 0, Z: 5, Radius: 2})
	cfg := DefaultLatticeConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanLattice(cm, cfg, 0, -5, 0, 0, 20); err != nil {
			b.Fatal(err)
		}
	}
}
