package plan

import (
	"fmt"
	"math"
)

// Decision summarizes the maneuver a structured-road plan encodes; the
// vehicle-control engine consumes the waypoints, operators and logs consume
// this label.
type Decision int

const (
	// KeepLane follows the current lateral offset.
	KeepLane Decision = iota
	// NudgeLeft / NudgeRight shift laterally (lane change or in-lane bias).
	NudgeLeft
	NudgeRight
	// Brake holds the lane while reducing speed for a blocking obstacle.
	Brake
	// EmergencyStop means no collision-free trajectory was found.
	EmergencyStop
)

func (d Decision) String() string {
	switch d {
	case KeepLane:
		return "keep-lane"
	case NudgeLeft:
		return "nudge-left"
	case NudgeRight:
		return "nudge-right"
	case Brake:
		return "brake"
	default:
		return "emergency-stop"
	}
}

// ConformalConfig parameterizes the structured-road planner: a conformal
// spatiotemporal lattice laid along the lane centerline.
type ConformalConfig struct {
	// Stations is the number of longitudinal samples ahead.
	Stations int
	// StationStep is the spacing between stations (m).
	StationStep float64
	// LateralOffsets are the candidate offsets from the centerline (m),
	// symmetric around 0 and ordered left(-) to right(+).
	LateralOffsets []float64
	// TargetSpeed is the cruise speed (m/s).
	TargetSpeed float64
	// SafetyMargin is the required clearance to obstacle centers (m).
	SafetyMargin float64
	// WeightLateral penalizes distance from the centerline.
	WeightLateral float64
	// WeightSteer penalizes lateral movement between stations.
	WeightSteer float64
	// WeightObstacle scales soft obstacle-proximity cost.
	WeightObstacle float64
	// FollowGap is the longitudinal gap (m) under which the planner
	// decides to brake behind a same-corridor obstacle.
	FollowGap float64
}

// DefaultConformalConfig returns the standard configuration: 30 stations at
// 1.5 m with 7 lateral offsets spanning one lane to each side.
func DefaultConformalConfig() ConformalConfig {
	return ConformalConfig{
		Stations:       30,
		StationStep:    1.5,
		LateralOffsets: []float64{-3.5, -2.3, -1.2, 0, 1.2, 2.3, 3.5},
		TargetSpeed:    13,
		SafetyMargin:   1.6,
		WeightLateral:  1.0,
		WeightSteer:    2.0,
		WeightObstacle: 4.0,
		FollowGap:      12,
	}
}

func (c *ConformalConfig) validate() error {
	if c.Stations < 2 {
		return fmt.Errorf("plan: Stations %d < 2", c.Stations)
	}
	if c.StationStep <= 0 {
		return fmt.Errorf("plan: StationStep %v <= 0", c.StationStep)
	}
	if len(c.LateralOffsets) == 0 {
		return fmt.Errorf("plan: no lateral offsets")
	}
	if c.TargetSpeed <= 0 {
		return fmt.Errorf("plan: TargetSpeed %v <= 0", c.TargetSpeed)
	}
	return nil
}

// ConformalResult is a structured-road plan.
type ConformalResult struct {
	Path     Path
	Decision Decision
	// Speed is the commanded speed for the first segment (m/s).
	Speed float64
}

// PlanConformal builds and searches the conformal spatiotemporal lattice.
// The centerline runs straight ahead from the ego pose (egoX, egoZ) in +Z —
// lane-frame planning; callers with curved roads pass obstacle positions
// already projected into this lane frame. Obstacles are extrapolated with
// their constant-velocity estimates to each station's arrival time, which
// is the "spatiotemporal" part of the lattice.
func PlanConformal(cfg ConformalConfig, egoX, egoZ float64, obstacles []Obstacle) (ConformalResult, error) {
	if err := cfg.validate(); err != nil {
		return ConformalResult{}, err
	}
	nL := len(cfg.LateralOffsets)
	nS := cfg.Stations

	// arrival[i] is the time the vehicle reaches station i at TargetSpeed.
	arrival := make([]float64, nS)
	for i := range arrival {
		arrival[i] = float64(i+1) * cfg.StationStep / cfg.TargetSpeed
	}

	// nodeCost[i][j]: obstacle cost of (station i, offset j); +Inf blocked.
	nodeCost := make([][]float64, nS)
	for i := range nodeCost {
		nodeCost[i] = make([]float64, nL)
		sz := egoZ + float64(i+1)*cfg.StationStep
		for j, off := range cfg.LateralOffsets {
			sx := egoX + off
			var cost float64
			for _, o := range obstacles {
				ox, oz := o.At(arrival[i])
				d := math.Hypot(ox-sx, oz-sz)
				clearance := cfg.SafetyMargin + o.Radius
				switch {
				case d <= clearance:
					cost = math.Inf(1)
				case d <= 2*clearance:
					cost += cfg.WeightObstacle * (1 - (d-clearance)/clearance)
				}
				if math.IsInf(cost, 1) {
					break
				}
			}
			nodeCost[i][j] = cost
		}
	}

	// DP over the station DAG: dp[i][j] = min cost to reach (i,j); lateral
	// moves are limited to adjacent offsets per station step.
	const inf = math.MaxFloat64
	dp := make([][]float64, nS)
	from := make([][]int, nS)
	for i := range dp {
		dp[i] = make([]float64, nL)
		from[i] = make([]int, nL)
		for j := range dp[i] {
			dp[i][j] = inf
			from[i][j] = -1
		}
	}
	// Ego starts at the offset nearest 0 (its own lane position).
	startJ := nearestOffset(cfg.LateralOffsets, 0)
	for j := range dp[0] {
		if math.IsInf(nodeCost[0][j], 1) {
			continue
		}
		steer := math.Abs(cfg.LateralOffsets[j] - cfg.LateralOffsets[startJ])
		if steer > 1.5*offsetPitch(cfg.LateralOffsets) {
			continue // can't jump multiple offsets in one step
		}
		dp[0][j] = cfg.WeightLateral*math.Abs(cfg.LateralOffsets[j]) +
			cfg.WeightSteer*steer + nodeCost[0][j]
		from[0][j] = startJ
	}
	for i := 1; i < nS; i++ {
		for j := 0; j < nL; j++ {
			if math.IsInf(nodeCost[i][j], 1) {
				continue
			}
			base := cfg.WeightLateral*math.Abs(cfg.LateralOffsets[j]) + nodeCost[i][j]
			for _, pj := range []int{j - 1, j, j + 1} {
				if pj < 0 || pj >= nL || dp[i-1][pj] == inf {
					continue
				}
				steer := math.Abs(cfg.LateralOffsets[j] - cfg.LateralOffsets[pj])
				cand := dp[i-1][pj] + base + cfg.WeightSteer*steer
				if cand < dp[i][j] {
					dp[i][j] = cand
					from[i][j] = pj
				}
			}
		}
	}

	// Best terminal node; fall back to the deepest reachable station when
	// the full horizon is blocked.
	lastStation := nS - 1
	bestJ := -1
	for lastStation >= 0 {
		bestCost := inf
		for j := 0; j < nL; j++ {
			if dp[lastStation][j] < bestCost {
				bestCost = dp[lastStation][j]
				bestJ = j
			}
		}
		if bestJ >= 0 && bestCost < inf {
			break
		}
		lastStation--
	}
	if lastStation < 0 {
		return ConformalResult{Decision: EmergencyStop}, nil
	}

	// Reconstruct offsets per station.
	offs := make([]int, lastStation+1)
	j := bestJ
	for i := lastStation; i >= 0; i-- {
		offs[i] = j
		j = from[i][j]
	}

	res := ConformalResult{Decision: KeepLane, Speed: cfg.TargetSpeed}
	res.Path.Waypoints = make([]Waypoint, lastStation+1)
	for i := 0; i <= lastStation; i++ {
		res.Path.Waypoints[i] = Waypoint{
			X:     egoX + cfg.LateralOffsets[offs[i]],
			Z:     egoZ + float64(i+1)*cfg.StationStep,
			Speed: cfg.TargetSpeed,
		}
	}
	res.Path.Cost = dp[lastStation][bestJ]
	// Headings from consecutive waypoints.
	for i := 0; i < len(res.Path.Waypoints); i++ {
		var a, b Waypoint
		switch {
		case i == 0:
			a = Waypoint{X: egoX, Z: egoZ}
			b = res.Path.Waypoints[0]
		default:
			a, b = res.Path.Waypoints[i-1], res.Path.Waypoints[i]
		}
		res.Path.Waypoints[i].Theta = math.Atan2(b.X-a.X, b.Z-a.Z)
	}

	// Decision labeling + speed control: classify by the path's largest
	// lateral deviation from the starting offset.
	startOff := cfg.LateralOffsets[startJ]
	maxDev := 0.0
	for _, oj := range offs {
		if dev := cfg.LateralOffsets[oj] - startOff; math.Abs(dev) > math.Abs(maxDev) {
			maxDev = dev
		}
	}
	switch {
	case maxDev < -0.5:
		res.Decision = NudgeLeft
	case maxDev > 0.5:
		res.Decision = NudgeRight
	}
	// Brake when a slower obstacle occupies our corridor within FollowGap.
	if res.Decision == KeepLane {
		for _, o := range obstacles {
			ahead := o.Z - egoZ
			if ahead > 0 && ahead < cfg.FollowGap &&
				math.Abs(o.X-egoX) < cfg.SafetyMargin+o.Radius {
				res.Decision = Brake
				res.Speed = cfg.TargetSpeed * math.Max(0.2, ahead/cfg.FollowGap)
				for i := range res.Path.Waypoints {
					res.Path.Waypoints[i].Speed = res.Speed
				}
				break
			}
		}
	}
	// Truncated horizons (full blockage downstream) also slow the vehicle.
	if lastStation < nS-1 && res.Decision != Brake {
		res.Decision = Brake
		res.Speed = cfg.TargetSpeed * float64(lastStation+1) / float64(nS)
		for i := range res.Path.Waypoints {
			res.Path.Waypoints[i].Speed = res.Speed
		}
	}
	return res, nil
}

func nearestOffset(offsets []float64, v float64) int {
	best, bestD := 0, math.Inf(1)
	for i, o := range offsets {
		d := math.Abs(o - v)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func offsetPitch(offsets []float64) float64 {
	if len(offsets) < 2 {
		return 1
	}
	pitch := math.Inf(1)
	for i := 1; i < len(offsets); i++ {
		if d := math.Abs(offsets[i] - offsets[i-1]); d < pitch {
			pitch = d
		}
	}
	return pitch
}
