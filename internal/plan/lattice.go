package plan

import (
	"container/heap"
	"fmt"
	"math"
)

// Waypoint is one pose sample along a planned path.
type Waypoint struct {
	X, Z  float64 // world position (m)
	Theta float64 // heading (rad, 0 = +Z)
	Speed float64 // commanded speed (m/s)
}

// Path is a planned trajectory.
type Path struct {
	Waypoints []Waypoint
	Cost      float64
}

// Length returns the arc length of the path (m).
func (p Path) Length() float64 {
	var total float64
	for i := 1; i < len(p.Waypoints); i++ {
		a, b := p.Waypoints[i-1], p.Waypoints[i]
		total += math.Hypot(b.X-a.X, b.Z-a.Z)
	}
	return total
}

// latticeHeadings discretizes heading into 16 sectors; the motion
// primitives move one cell forward with an optional ±1 sector turn.
const latticeHeadings = 16

// LatticeConfig parameterizes the unstructured state-lattice planner.
type LatticeConfig struct {
	// StepCost is the base cost of one forward primitive.
	StepCost float64
	// TurnCost is the extra cost of a turning primitive, penalizing
	// curvature (smoother paths win).
	TurnCost float64
	// GoalTolerance is the acceptance radius around the goal (m).
	GoalTolerance float64
	// MaxExpansions bounds the search so malformed queries terminate.
	MaxExpansions int
	// Speed stamped on resulting waypoints (m/s).
	Speed float64
}

// DefaultLatticeConfig returns the standard configuration.
func DefaultLatticeConfig() LatticeConfig {
	return LatticeConfig{
		StepCost:      1.0,
		TurnCost:      0.4,
		GoalTolerance: 1.0,
		MaxExpansions: 200000,
		Speed:         3.0,
	}
}

// latticeState is a discrete (cell, heading) search state.
type latticeState struct {
	ix, iz, ih int
}

type latticeNode struct {
	state  latticeState
	g, f   float64
	parent *latticeNode
	index  int // heap bookkeeping
}

type nodeHeap []*latticeNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *nodeHeap) Push(x interface{}) { n := x.(*latticeNode); n.index = len(*h); *h = append(*h, n) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

// PlanLattice searches the state lattice over the costmap from a start pose
// to a goal position using A* with the Euclidean-distance heuristic. It is
// the paper's planner for "large opening areas like parking lots or rural
// areas".
func PlanLattice(cm *Costmap, cfg LatticeConfig, startX, startZ, startTheta, goalX, goalZ float64) (Path, error) {
	if cfg.MaxExpansions <= 0 {
		cfg.MaxExpansions = 200000
	}
	if cfg.GoalTolerance <= 0 {
		cfg.GoalTolerance = 1.0
	}
	six, siz, ok := cm.Index(startX, startZ)
	if !ok {
		return Path{}, fmt.Errorf("plan: start (%v,%v) outside costmap", startX, startZ)
	}
	if _, _, ok := cm.Index(goalX, goalZ); !ok {
		return Path{}, fmt.Errorf("plan: goal (%v,%v) outside costmap", goalX, goalZ)
	}
	if cm.Lethal(goalX, goalZ) {
		return Path{}, fmt.Errorf("plan: goal (%v,%v) is occupied", goalX, goalZ)
	}

	startHeading := headingSector(startTheta)
	start := &latticeNode{state: latticeState{six, siz, startHeading}}
	start.f = math.Hypot(goalX-startX, goalZ-startZ)

	open := &nodeHeap{}
	heap.Init(open)
	heap.Push(open, start)
	best := map[latticeState]float64{start.state: 0}

	expansions := 0
	for open.Len() > 0 {
		cur := heap.Pop(open).(*latticeNode)
		expansions++
		if expansions > cfg.MaxExpansions {
			return Path{}, fmt.Errorf("plan: search exceeded %d expansions", cfg.MaxExpansions)
		}
		cx, cz := cm.cellCenter(cur.state.ix, cur.state.iz)
		if math.Hypot(goalX-cx, goalZ-cz) <= cfg.GoalTolerance {
			return reconstruct(cm, cfg, cur), nil
		}
		// Primitives: keep heading, turn left, turn right — each advances
		// one cell along the (new) heading direction.
		for dh := -1; dh <= 1; dh++ {
			nh := (cur.state.ih + dh + latticeHeadings) % latticeHeadings
			dx, dz := headingStep(nh)
			ns := latticeState{cur.state.ix + dx, cur.state.iz + dz, nh}
			if ns.ix < 0 || ns.iz < 0 || ns.ix >= cm.W || ns.iz >= cm.H {
				continue
			}
			nx, nz := cm.cellCenter(ns.ix, ns.iz)
			cellCost := cm.CostAt(nx, nz)
			if math.IsInf(cellCost, 1) {
				continue
			}
			stepLen := math.Hypot(float64(dx), float64(dz))
			g := cur.g + cfg.StepCost*stepLen + cellCost
			if dh != 0 {
				g += cfg.TurnCost
			}
			if prev, seen := best[ns]; seen && prev <= g {
				continue
			}
			best[ns] = g
			n := &latticeNode{state: ns, g: g, parent: cur}
			n.f = g + math.Hypot(goalX-nx, goalZ-nz)
			heap.Push(open, n)
		}
	}
	return Path{}, fmt.Errorf("plan: no path to goal (%v,%v)", goalX, goalZ)
}

// headingSector quantizes an angle into one of the lattice's sectors.
func headingSector(theta float64) int {
	s := int(math.Round(theta/(2*math.Pi/latticeHeadings))) % latticeHeadings
	if s < 0 {
		s += latticeHeadings
	}
	return s
}

// headingStep returns the cell step for a heading sector, using an 8-way
// neighborhood (sectors collapse onto the nearest of 8 directions; 16
// sectors keep turn costs fine-grained while steps stay grid-aligned).
func headingStep(sector int) (dx, dz int) {
	theta := float64(sector) * 2 * math.Pi / latticeHeadings
	// Theta 0 faces +Z; positive theta rotates toward +X.
	x := math.Sin(theta)
	z := math.Cos(theta)
	return signRound(x), signRound(z)
}

func signRound(v float64) int {
	switch {
	case v > 0.3827: // sin(22.5°): nearest 8-way direction
		return 1
	case v < -0.3827:
		return -1
	default:
		return 0
	}
}

func (c *Costmap) cellCenter(ix, iz int) (x, z float64) {
	return c.OriginX + (float64(ix)+0.5)*c.Res, c.OriginZ + (float64(iz)+0.5)*c.Res
}

func reconstruct(cm *Costmap, cfg LatticeConfig, goal *latticeNode) Path {
	var rev []*latticeNode
	for n := goal; n != nil; n = n.parent {
		rev = append(rev, n)
	}
	p := Path{Cost: goal.g, Waypoints: make([]Waypoint, len(rev))}
	for i := range rev {
		n := rev[len(rev)-1-i]
		x, z := cm.cellCenter(n.state.ix, n.state.iz)
		p.Waypoints[i] = Waypoint{
			X: x, Z: z,
			Theta: float64(n.state.ih) * 2 * math.Pi / latticeHeadings,
			Speed: cfg.Speed,
		}
	}
	return p
}
