GO ?= go

# Coverage floor for the telemetry layer (percent of statements).
TELEMETRY_COVER_FLOOR ?= 80
# Coverage floor for the fault-injection substrate: it underpins the chaos
# suite's determinism claims, so nearly every branch must be exercised.
FAULTINJECT_COVER_FLOOR ?= 90

.PHONY: build vet test race bench bench-gate bench-smoke alloc-gate check cover fmt-check fuzz-smoke chaos-smoke fleet-smoke tail-smoke scenario-smoke soak soak-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark tier (ROADMAP item 5): the headline pipeline benchmarks plus
# the kernel benches, parsed into the schema'd trajectory file
# BENCH_$(BENCH_N).json with the measurement it is compared against
# embedded alongside (see internal/benchjson). Takes a few minutes.
BENCH_N ?= 4
BENCH_BASELINE_NAME ?= BenchmarkRunner
BENCH_BASELINE_NS ?= 15657601
BENCH_BASELINE_FPS ?= 63.87
BENCH_BASELINE_P9999 ?= 143.2
BENCH_BASELINE_REF ?= PR6 main@70f6efa, BENCH_1.json BenchmarkRunner mean

# The newest committed trajectory file other than the one being (re)written:
# bench prints deltas against it, bench-gate fails on its regressions.
BENCH_PREV = $$(ls BENCH_*.json 2>/dev/null | grep -v "^BENCH_$(BENCH_N)\.json$$" | sort -t_ -k2 -n | tail -1)

bench:
	@rm -f bench.out
	$(GO) test -run '^$$' -bench '^BenchmarkRunner$$' -benchtime 100x -count 3 . | tee -a bench.out
	$(GO) test -run '^$$' -bench '^BenchmarkFleet$$' -benchtime 50x . | tee -a bench.out
	$(GO) test -run '^$$' -bench '^BenchmarkFleetCapacity$$' -benchtime 250x . | tee -a bench.out
	$(GO) test -run '^$$' -bench '^BenchmarkRunnerTail$$' -benchtime 100x -count 3 . | tee -a bench.out
	$(GO) test -run '^$$' -bench '^BenchmarkDegradedPipeline$$' -benchtime 50x ./internal/pipeline | tee -a bench.out
	$(GO) test -run '^$$' -bench '^BenchmarkShardedReloc$$' ./internal/slam | tee -a bench.out
	$(GO) test -run '^$$' -bench '^BenchmarkExtractFeatures$$' ./internal/slam | tee -a bench.out
	$(GO) test -run '^$$' -bench '^(BenchmarkConv2D|BenchmarkConv2DIm2Col|BenchmarkFullyConnected(Int8)?|BenchmarkConv2DInt8|BenchmarkNetworkForwardScratch(Int8)?)$$' -benchmem -count 3 ./internal/tensor ./internal/dnn | tee -a bench.out
	@prev="$(BENCH_PREV)"; \
	$(GO) run ./cmd/adbenchjson -o BENCH_$(BENCH_N).json $${prev:+-prev "$$prev"} \
		-baseline-name '$(BENCH_BASELINE_NAME)' -baseline-ns $(BENCH_BASELINE_NS) \
		-baseline-metric 'frames/s=$(BENCH_BASELINE_FPS)' \
		-baseline-metric 'p99.99-ms=$(BENCH_BASELINE_P9999)' \
		-baseline-ref '$(BENCH_BASELINE_REF)' < bench.out

# Regression gate (ROADMAP item 5): compare the newest committed trajectory
# file against its predecessor and fail on large unexplained ns/op
# regressions. Accepted slowdowns are waived with a recorded reason:
#   make bench-gate BENCH_EXPLAIN="-explain 'BenchmarkX=now validates checksums'"
BENCH_GATE_THRESHOLD ?= 1.5
BENCH_EXPLAIN ?=
bench-gate:
	@files="$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)"; \
	new="$$(echo "$$files" | tail -1)"; \
	prev="$$(echo "$$files" | tail -2 | head -1)"; \
	if [ -z "$$new" ] || [ "$$new" = "$$prev" ]; then \
		echo "bench-gate: fewer than two BENCH_*.json files, nothing to compare"; exit 0; \
	fi; \
	$(GO) run ./cmd/adbenchjson -in "$$new" -prev "$$prev" -gate \
		-gate-threshold $(BENCH_GATE_THRESHOLD) $(BENCH_EXPLAIN)

# One-iteration sweep over every benchmark: catches bit-rotted benchmarks
# without the cost of real measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# Zero-allocation gates on the warm inference hot path (testing.AllocsPerRun
# is unreliable under -race, so these run without it; `make race` still
# executes the same tests for correctness).
alloc-gate:
	$(GO) test -run 'TestAlloc' -v ./internal/tensor ./internal/dnn ./internal/detect ./internal/track | grep -E '^(=== RUN|--- (FAIL|PASS)|FAIL|ok)'

# Short fuzz smoke over the ADM1 prior-map decoder and the unified scenario
# program parser (go test -fuzz works on one package at a time; -run '^$'
# skips the unit tests it already ran).
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadPriorMap -fuzztime=10s -run='^$$' ./internal/slam
	$(GO) test -fuzz=FuzzParseScenarioProgram -fuzztime=10s -run='^$$' ./internal/scenario

# Chaos smoke: the deterministic fault-injection suite under the race
# detector (Step/Runner equivalence, golden trace, degraded-deadline and
# Stop-drain guarantees), then a short seeded end-to-end chaos run through
# the CLI with deadline enforcement on.
chaos-smoke:
	$(GO) test -race -run 'TestChaos|TestGoldenChaosTrace|TestDegradedFrameMeetsFrameDeadline|TestRunnerStopDrainsDegradedInFlight' ./internal/pipeline
	$(GO) test -race ./internal/faultinject
	$(GO) run ./cmd/adpipe -frames 30 -dnn=false -width 384 -height 192 -survey 20 \
		-deadline 100ms -fault 'DET:delay=60ms:every=5,LOC:delay=120ms:frames=10-12,SRC:drop:every=17'

# Fleet smoke: the fleet/solo bitwise-parity and cross-stream isolation
# suites under the race detector (small N), then a short end-to-end fleet
# run through the CLI — shared batching executor, shared map store, one
# faulted vehicle.
fleet-smoke:
	$(GO) test -race -run 'TestFleet|TestAdviseVehicle' ./internal/pipeline ./internal/slam
	$(GO) run ./cmd/adfleet -vehicles 3 -frames 20 -dnn=false -width 384 -height 192 -survey 20 \
		-deadline 100ms -fault 'DET:delay=60ms:every=5' -fault-vehicle 1

# Tail smoke: the closed-loop tail-scheduler suite under the race detector
# (controller law, pinned-window/Step equivalence, in-order shrink, anytime
# drain and golden trace), then a short stall-injected end-to-end run
# through the CLI with the scheduler and anytime DET on.
tail-smoke:
	$(GO) test -race -run 'TestTail|TestAnytime|TestWallAnytimeCommitsCoarseFrame|TestChaosAnytimeEquivalence|TestGoldenAnytimeTrace' ./internal/pipeline
	$(GO) run ./cmd/adpipe -frames 40 -dnn=false -width 384 -height 192 -survey 20 \
		-inflight 4 -deadline 100ms -anytime -tail 40ms -fault 'DET:delay=32ms:every=7:burst=3'

# Long-haul soak: thousands of virtual-deadline frames through a churning,
# admission-controlled fleet under the mixed-stress scenario, with the
# structural audits (goroutine leaks, heap growth, monitor invariants,
# churn bitwise parity) under the race detector. Takes about a minute.
soak:
	$(GO) test -race -run 'TestFleetSoak|TestFleetChurnBitwiseParity' -count=1 -timeout 20m -v ./internal/pipeline

# The -short scaling of the same harness: a few hundred frames, same
# churn script and audits. Wired into check and CI.
soak-smoke:
	$(GO) test -race -short -run 'TestFleetSoak|TestFleetChurnBitwiseParity' -count=1 ./internal/pipeline

# Scenario smoke: the scenario-program layer under the race detector
# (parser/validator/library, scene timeline determinism, program-driven
# Step/Runner equivalence and per-vehicle fleet assignment), then one
# library program replayed end to end through each CLI — adpipe prints its
# constraint scorecard, adfleet assigns a program to one vehicle.
scenario-smoke:
	$(GO) test -race ./internal/scenario ./internal/scene
	$(GO) test -race -run 'TestScenarioProgram|TestFleetSceneAssignment|TestScenariosStudy' ./internal/pipeline ./internal/experiment
	$(GO) run ./cmd/adpipe -scenario mixed-stress -frames 40 -dnn=false -width 384 -height 192 -survey 20 -deadline 100ms
	$(GO) run ./cmd/adfleet -vehicles 2 -frames 20 -dnn=false -width 384 -height 192 -survey 20 -assign '1=cut-in'

# The tier the concurrency work is held to: compile everything, vet, run
# the full test suite under the race detector (which includes the chaos
# suite), fuzz the map decoder, drive the chaos and fleet scenarios end to
# end through the CLIs, then hold the committed benchmark trajectory to the
# regression gate.
check: build vet race alloc-gate fuzz-smoke chaos-smoke fleet-smoke tail-smoke scenario-smoke soak-smoke bench-gate

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Coverage over the observability and chaos layers (telemetry, its stats
# backing, the constraint monitor and the fault injector), with enforced
# floors on internal/telemetry and internal/faultinject.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/telemetry/...,./internal/stats/...,./internal/constraint/...,./internal/faultinject/...,./internal/scenario/... \
		./internal/telemetry/... ./internal/stats/... ./internal/constraint/... ./internal/faultinject/... ./internal/scenario/... ./internal/pipeline/...
	$(GO) tool cover -func=cover.out | tail -1
	@total="$$($(GO) tool cover -func=cover.out | grep 'internal/telemetry/' | \
		awk '{ sub(/%/, "", $$3); sum += $$3; n++ } END { if (n) printf "%.1f", sum / n; else print 0 }')"; \
	echo "internal/telemetry mean statement coverage: $$total% (floor $(TELEMETRY_COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(TELEMETRY_COVER_FLOOR)) }" || \
		{ echo "coverage below floor"; exit 1; }
	@total="$$($(GO) tool cover -func=cover.out | grep 'internal/faultinject/' | \
		awk '{ sub(/%/, "", $$3); sum += $$3; n++ } END { if (n) printf "%.1f", sum / n; else print 0 }')"; \
	echo "internal/faultinject mean statement coverage: $$total% (floor $(FAULTINJECT_COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(FAULTINJECT_COVER_FLOOR)) }" || \
		{ echo "coverage below floor"; exit 1; }
