GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The tier the concurrency work is held to: compile everything, vet, and
# run the full test suite under the race detector.
check: build vet race
