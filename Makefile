GO ?= go

# Coverage floor for the telemetry layer (percent of statements).
TELEMETRY_COVER_FLOOR ?= 80

.PHONY: build vet test race bench check cover fmt-check fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Short fuzz smoke over the ADM1 prior-map decoder (go test -fuzz works on
# one package at a time; -run '^$' skips the unit tests it already ran).
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadPriorMap -fuzztime=10s -run='^$$' ./internal/slam

# The tier the concurrency work is held to: compile everything, vet, run
# the full test suite under the race detector, then fuzz the map decoder.
check: build vet race fuzz-smoke

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Coverage over the observability layer (telemetry, its stats backing, and
# the constraint monitor), with an enforced floor on internal/telemetry.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/telemetry/...,./internal/stats/...,./internal/constraint/... \
		./internal/telemetry/... ./internal/stats/... ./internal/constraint/... ./internal/pipeline/...
	$(GO) tool cover -func=cover.out | tail -1
	@total="$$($(GO) tool cover -func=cover.out | grep 'internal/telemetry/' | \
		awk '{ sub(/%/, "", $$3); sum += $$3; n++ } END { if (n) printf "%.1f", sum / n; else print 0 }')"; \
	echo "internal/telemetry mean statement coverage: $$total% (floor $(TELEMETRY_COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(TELEMETRY_COVER_FLOOR)) }" || \
		{ echo "coverage below floor"; exit 1; }
