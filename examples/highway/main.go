// Highway: a tracking-heavy scenario — eight vehicles at speed, no
// pedestrians — driven through the native pipeline, followed by the paper's
// design-constraint check over the measured end-to-end latency
// distribution.
//
// On a workstation the native Go pipeline (which stands in for the paper's
// Caffe/C++ stack) typically PASSES the 100 ms / 10 fps performance check
// at this reduced frame size while the paper's full-scale CPU system fails
// it by two orders of magnitude — the point of the exercise is the
// constraint machinery, not the absolute numbers.
package main

import (
	"fmt"
	"log"
	"time"

	"adsim"
)

func main() {
	cfg := adsim.DefaultPipelineConfig(adsim.Highway)
	cfg.Detect.RunDNN = false // keep the demo snappy
	cfg.Track.RunDNN = false
	p, err := adsim.NewPipelineFromConfig(cfg)
	if err != nil {
		log.Fatalf("highway: %v", err)
	}

	const frames = 120
	lat := adsim.NewDistribution(frames)
	braking, nudges := 0, 0
	for i := 0; i < frames; i++ {
		res, err := p.Step()
		if err != nil {
			log.Fatalf("highway: frame %d: %v", i, err)
		}
		lat.Add(float64(res.Timing.E2E) / float64(time.Millisecond))
		switch res.Plan.Decision.String() {
		case "brake":
			braking++
		case "nudge-left", "nudge-right":
			nudges++
		}
	}

	fmt.Printf("drove %d highway frames: %d brake decisions, %d lane nudges\n",
		frames, braking, nudges)
	fmt.Printf("end-to-end latency: %s\n\n", lat.Summary())

	// The paper's Section 2.4 design-constraint check. The latency
	// distribution here has only 120 samples, so the predictability
	// verdict fails — exactly the paper's point that certifying a
	// 99.99th percentile requires long-horizon measurement.
	report := adsim.CheckConstraints(adsim.ConstraintInput{
		Latency:            lat,
		FrameRate:          cfg.Scene.FPS,
		AvailableStorageTB: 50,
		ComputePowerW:      140, // ASIC-grade engine per Fig 10c
		MapTB:              41,
		CoolingCapacityW:   800,
	})
	fmt.Println("constraint report (short measurement run):")
	fmt.Print(report)
}
