// Quickstart: run the native end-to-end autonomous driving pipeline on a
// synthetic urban scenario for a few seconds of driving and print what each
// stage of the paper's Figure 1 produced.
package main

import (
	"fmt"
	"log"

	"adsim"
)

func main() {
	// Build the pipeline with defaults: a 512x256 urban scenario at
	// 10 fps, a prior map surveyed over the first 60 frames of the route,
	// and all engines (detector, tracker pool, localizer, fusion, motion
	// planner) running natively.
	p, err := adsim.NewPipeline(adsim.Urban)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	const frames = 30
	for i := 0; i < frames; i++ {
		res, err := p.Step()
		if err != nil {
			log.Fatalf("quickstart: frame %d: %v", i, err)
		}
		if i%5 != 0 {
			continue
		}
		fmt.Printf("t=%4.1fs  detections=%d  tracked=%d  pose z=%6.1fm (localized=%v)  decision=%v  speed=%4.1f m/s\n",
			res.Frame.Time, len(res.Detections), len(res.Tracks),
			res.Pose.Pose.Z, res.Pose.Tracked, res.Plan.Decision, res.Plan.Speed)
	}

	loc := p.Localizer()
	fmt.Printf("\nlocalizer: %v, relocalizations=%d, map updates=%d\n",
		loc.Map(), loc.Relocalizations(), loc.MapUpdates())
	fmt.Printf("tracker: %d objects currently in the tracked-object table\n",
		p.Tracker().ActiveCount())
}
