// Loopclosure: drive a closed 120 m loop route. Lap 1 surveys the prior
// map; lap 2 revisits the same scenery while the odometry distance keeps
// growing. The localizer recognizes the revisit and re-anchors the pose
// into the map frame — via the wide-search relocalization path at the wrap
// (the paper's LOC tail-latency path) and via the periodic loop-closing
// scan whenever odometry has drifted while still tracking. Note how the
// map-frame estimate stays glued to the wrapped ground truth throughout
// lap 2.
package main

import (
	"fmt"
	"log"
	"math"

	"adsim/internal/scene"
	"adsim/internal/slam"
)

func main() {
	cfg := scene.DefaultConfig(scene.Urban)
	cfg.Width, cfg.Height = 512, 256
	cfg.LoopLength = 120 // meters; multiple of 6 for exact periodicity
	cfg.NumSigns = 4
	gen, err := scene.New(cfg)
	if err != nil {
		log.Fatalf("loopclosure: %v", err)
	}

	slamCfg := slam.DefaultConfig()
	slamCfg.LoopCloseEvery = 10
	slamCfg.LoopCloseMinGap = 60
	eng, err := slam.NewEngine(slamCfg, slam.NewPriorMap())
	if err != nil {
		log.Fatalf("loopclosure: %v", err)
	}

	framesPerLap := int(cfg.LoopLength / (cfg.EgoSpeed / cfg.FPS))
	fmt.Printf("lap 1: surveying the %gm loop (%d frames)...\n", cfg.LoopLength, framesPerLap)
	for i := 0; i < framesPerLap; i++ {
		f := gen.Step()
		pose := f.EgoPose
		pose.Z = math.Mod(pose.Z, cfg.LoopLength)
		eng.Survey(f.Image, pose)
	}
	fmt.Printf("prior map: %v\n\n", eng.Map())

	fmt.Println("lap 2: localizing (odometry keeps growing; map frame wraps)...")
	for i := 0; i < framesPerLap; i++ {
		f := gen.Step()
		est := eng.Localize(f.Image)
		if est.LoopClosed {
			fmt.Printf("frame %3d: LOOP CLOSURE — odometry z=%.1fm re-anchored to map z=%.1fm\n",
				i, f.EgoPose.Z, est.Pose.Z)
		}
		if est.Relocalized && est.Tracked {
			fmt.Printf("frame %3d: RELOCALIZED (wide map search) — odometry z=%.1fm → map z=%.1fm\n",
				i, f.EgoPose.Z, est.Pose.Z)
		}
		if i%20 == 0 {
			wrapped := math.Mod(f.EgoPose.Z, cfg.LoopLength)
			fmt.Printf("frame %3d: map-frame z=%6.1fm (truth %6.1fm) tracked=%v\n",
				i, est.Pose.Z, wrapped, est.Tracked)
		}
	}
	fmt.Printf("\nloop closures: %d, relocalizations: %d\n",
		eng.LoopClosures(), eng.Relocalizations())
}
