// Platforms: explore the acceleration landscape of Section 5 — simulate
// the end-to-end system at paper scale on each platform assignment, check
// it against the design constraints, and show the performance/power
// trade-off that drives the paper's conclusions.
package main

import (
	"fmt"
	"log"

	"adsim"
	"adsim/internal/power"
)

func main() {
	m := adsim.NewModel()

	configs := []struct {
		name string
		a    adsim.Assignment
	}{
		{"all-CPU (baseline)", adsim.Uniform(adsim.CPU)},
		{"all-GPU", adsim.Uniform(adsim.GPU)},
		{"all-FPGA", adsim.Uniform(adsim.FPGA)},
		{"all-ASIC", adsim.Uniform(adsim.ASIC)},
		{"best mixed (paper)", adsim.Assignment{Det: adsim.GPU, Tra: adsim.ASIC, Loc: adsim.ASIC}},
	}

	fmt.Printf("%-20s %12s %12s %10s %10s %8s\n",
		"configuration", "mean (ms)", "P99.99 (ms)", "power (W)", "range-%", "verdict")
	for i, c := range configs {
		sim, err := adsim.Simulate(m, adsim.SimConfig{
			Assignment: c.a, Frames: 60000, Seed: int64(i) + 1,
		})
		if err != nil {
			log.Fatalf("platforms: %v", err)
		}
		// End-to-end vehicle fit: 8 cameras with engine replicas, the
		// 41 TB US map, COP-1.3 cooling.
		computeW := 8 * c.a.ComputePowerW(m)
		sys := power.System(computeW, power.USMapTB)

		report := adsim.CheckConstraints(adsim.ConstraintInput{
			Latency:            sim.E2E,
			FrameRate:          10,
			AvailableStorageTB: 50,
			ComputePowerW:      computeW,
			MapTB:              power.USMapTB,
			CoolingCapacityW:   3000,
			MaxRangeReduction:  0.05,
		})
		verdict := "PASS"
		if !report.Pass() {
			verdict = fmt.Sprintf("FAIL(%v)", report.Failed())
		}
		fmt.Printf("%-20s %12.1f %12.1f %10.0f %10.1f %8s\n",
			c.name, sim.E2E.Mean(), sim.E2E.P9999(),
			sys.Total(), 100*power.RangeReduction(sys.Total()), verdict)
	}

	fmt.Println("\nThe paper's conclusion in one table: GPUs deliver latency but burn")
	fmt.Println("range (any GPU in the fleet pushes the 8-camera system past the 5%")
	fmt.Println("range budget); FPGAs save power but miss the deadline on the DNN")
	fmt.Println("engines; only the all-ASIC design meets every constraint at once.")
}
