// Urban: the localization-heavy scenario. The route is fully surveyed into
// the prior map first — the paper's operating premise (its storage
// constraint sizes a 41 TB map covering the entire US) — and the run then
// exercises the ORB-SLAM-style cascade: map-anchored tracking, cold-start
// relocalization (the wide-search path behind the paper's LOC tail-latency
// findings) and periodic loop-closing scans. A mission planner supplies
// per-leg speed limits and stop lines, and re-plans on route deviation.
package main

import (
	"fmt"
	"log"

	"adsim"
	"adsim/internal/mission"
)

func main() {
	cfg := adsim.DefaultPipelineConfig(adsim.Urban)
	cfg.Detect.RunDNN = false
	cfg.Track.RunDNN = false
	cfg.SurveyFrames = 160 // survey the full route (the paper's premise)
	p, err := adsim.NewPipelineFromConfig(cfg)
	if err != nil {
		log.Fatalf("urban: %v", err)
	}

	// Straight urban route: intersections every 100 m with local streets.
	g := mission.NewGraph()
	for i := 0; i < 6; i++ {
		g.AddNode(mission.Node{ID: mission.NodeID(i), X: 0, Z: float64(i) * 100})
	}
	for i := 0; i < 5; i++ {
		if err := g.AddBidirectional(mission.Edge{
			From: mission.NodeID(i), To: mission.NodeID(i + 1),
			Class: mission.Local, StopAtEnd: i%2 == 1,
		}); err != nil {
			log.Fatalf("urban: %v", err)
		}
	}
	mp, err := mission.NewPlanner(g)
	if err != nil {
		log.Fatalf("urban: %v", err)
	}
	if err := mp.Start(0, 5); err != nil {
		log.Fatalf("urban: %v", err)
	}
	p.AttachMission(mp)

	const frames = 100
	tracked, reloc := 0, 0
	for i := 0; i < frames; i++ {
		res, err := p.Step()
		if err != nil {
			log.Fatalf("urban: frame %d: %v", i, err)
		}
		if res.Pose.Tracked {
			tracked++
		}
		if res.Pose.Relocalized {
			reloc++
			fmt.Printf("frame %3d: RELOCALIZATION (wide map search) at z=%.1fm\n",
				i, res.Pose.Pose.Z)
		}
		if res.Guidance.Replanned {
			fmt.Printf("frame %3d: route deviation — mission planner re-planned\n", i)
		}
		if i%20 == 0 {
			fmt.Printf("frame %3d: z=%6.1fm localized=%v speed-limit=%.1f stop-ahead=%v decision=%v\n",
				i, res.Pose.Pose.Z, res.Pose.Tracked,
				res.Guidance.SpeedLimit, res.Guidance.StopAhead, res.Plan.Decision)
		}
	}

	loc := p.Localizer()
	fmt.Printf("\nlocalized %d/%d frames; %d relocalization frames\n", tracked, frames, reloc)
	fmt.Printf("prior map: %v (%d runtime updates, %d loop-close scans hit)\n",
		loc.Map(), loc.MapUpdates(), loc.LoopClosures())
	fmt.Printf("mission re-plans: %d\n", mp.Replans())
}
