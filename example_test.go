package adsim_test

import (
	"fmt"

	"adsim"
)

// ExampleSimulate reproduces the paper's headline configuration: DET on a
// GPU with TRA and LOC on ASICs meets the 100 ms tail-latency constraint
// with an order of magnitude of headroom.
func ExampleSimulate() {
	m := adsim.NewModel()
	sim, err := adsim.Simulate(m, adsim.SimConfig{
		Assignment: adsim.Assignment{Det: adsim.GPU, Tra: adsim.ASIC, Loc: adsim.ASIC},
		Frames:     40000,
		Seed:       2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("meets 100ms tail constraint: %v\n", sim.E2E.P9999() <= 100)
	// Output:
	// meets 100ms tail constraint: true
}

// ExampleCheckConstraints evaluates a candidate system against the paper's
// Section 2.4 design constraints.
func ExampleCheckConstraints() {
	latency := adsim.NewDistribution(50000)
	for i := 0; i < 50000; i++ {
		latency.Add(16.5) // the paper's best accelerated configuration
	}
	report := adsim.CheckConstraints(adsim.ConstraintInput{
		Latency:            latency,
		FrameRate:          30,
		AvailableStorageTB: 50,
		ComputePowerW:      140, // ASIC-grade engines
		MapTB:              41,
		CoolingCapacityW:   800,
	})
	fmt.Println("all constraints pass:", report.Pass())
	// Output:
	// all constraints pass: true
}

// ExampleUniform shows platform-uniform assignments and their power draw.
func ExampleUniform() {
	m := adsim.NewModel()
	a := adsim.Uniform(adsim.ASIC)
	fmt.Printf("%s draws %.1f W per camera\n", a.Short(), a.ComputePowerW(m))
	// Output:
	// ASIC/ASIC/ASIC draws 17.3 W per camera
}
