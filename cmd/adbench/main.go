// Command adbench regenerates the paper's evaluation: every table and
// figure is a named experiment.
//
// Usage:
//
//	adbench -list
//	adbench -experiment fig10
//	adbench -experiment all -frames 100000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"adsim"
)

func main() {
	var (
		expID    = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		frames   = flag.Int("frames", 40000, "simulated frames per configuration")
		seed     = flag.Int64("seed", 1, "random seed")
		native   = flag.Int("native-frames", 12, "natively executed frames for instrumentation experiments")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Bool("parallel", false, "run experiments concurrently (output stays in id order)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range adsim.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	opts := adsim.ExperimentOptions{Frames: *frames, Seed: *seed, NativeFrames: *native}

	ids := []string{*expID}
	if *expID == "all" {
		ids = adsim.ExperimentIDs()
	}

	outputs := make([]string, len(ids))
	errs := make([]error, len(ids))
	if *parallel {
		var wg sync.WaitGroup
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				outputs[i], errs[i] = adsim.RunExperiment(id, opts)
			}(i, id)
		}
		wg.Wait()
	} else {
		for i, id := range ids {
			outputs[i], errs[i] = adsim.RunExperiment(id, opts)
		}
	}
	for i, id := range ids {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "adbench: %s: %v\n", id, errs[i])
			os.Exit(1)
		}
		fmt.Println(strings.TrimRight(outputs[i], "\n"))
		fmt.Println()
	}
}
