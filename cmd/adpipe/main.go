// Command adpipe runs the native end-to-end autonomous driving pipeline on
// a synthetic scenario and reports per-stage statistics.
//
// Usage:
//
//	adpipe -scenario urban -frames 50
//	adpipe -scenario highway -frames 100 -dnn=false -v
//	adpipe -scenario highway -frames 200 -inflight 4 -workers 8
//	adpipe -scenario urban -frames 100 -inflight 3 -telemetry json
//	adpipe -scenario urban -frames 200 -deadline 100ms
//	adpipe -frames 200 -deadline 100ms -fault 'DET:delay=30ms:every=5,SRC:drop:every=50'
//	adpipe -scenario rush-hour -frames 300 -deadline 100ms     # library program + scorecard
//	adpipe -scenario ./my.adsc -base highway -seed 7 -frames 200
//	adpipe -list-scenarios
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"adsim"
	"adsim/internal/pipeline"
	"adsim/internal/scene"
	"adsim/internal/stats"
)

func main() {
	var (
		scenario = flag.String("scenario", "urban", "scenario: urban, highway, a library program name (see -list-scenarios), or a path to a .adsc program file")
		base     = flag.String("base", "urban", "base world kind a scenario program phases over: urban or highway")
		seed     = flag.Int64("seed", 0, "scene seed override (0 keeps the scenario default)")
		list     = flag.Bool("list-scenarios", false, "list the committed scenario-program library and exit")
		frames   = flag.Int("frames", 50, "frames to process")
		width    = flag.Int("width", 512, "frame width")
		height   = flag.Int("height", 256, "frame height")
		survey   = flag.Int("survey", 60, "prior-map survey frames")
		dnn      = flag.Bool("dnn", true, "execute the native DNNs (slower, full instrumentation)")
		quant    = flag.Bool("quantized", false, "run the native DNNs through the int8 quantized inference path")
		inflight = flag.Int("inflight", 1, "frames in flight: 1 runs sequentially, >1 pipelines frames through a concurrent Runner")
		workers  = flag.Int("workers", 0, "goroutines per DNN conv/FC kernel (0 = number of CPUs)")
		verbose  = flag.Bool("v", false, "print per-frame results")
		hist     = flag.Bool("hist", false, "print an end-to-end latency histogram")
		trace    = flag.String("trace", "", "write a JSON-lines trace of every frame to this file")
		telem    = flag.String("telemetry", "off", "telemetry summary format: json, csv or off; also enables the live constraint verdict")
		deadline = flag.Duration("deadline", 0, "enforce per-stage deadline budgets split from this frame deadline; budget-blown stages fall back to degraded modes (0 disables)")
		tailTgt  = flag.Duration("tail", 0, "steer the rolling P99.99 toward this target with the closed-loop tail scheduler: adapts the -inflight admission window and steps DET resolution down -ladder under pressure (0 disables)")
		anytime  = flag.Bool("anytime", false, "let a budget-blown DET commit a coarser on-time detection set (anytime early exit) instead of shedding it; requires -deadline")
		ladder   = flag.String("ladder", "", "comma-separated strictly-descending DET input sizes for -tail's resolution ladder (default: derived from the detector's input size)")
		fault    = flag.String("fault", "", "seeded fault scenario, e.g. 'DET:delay=30ms:every=5,IO:err:p=0.2,SRC:drop:every=50'")
		faultSd  = flag.Int64("fault-seed", 1, "seed for the fault scenario's probabilistic rules")
	)
	flag.Parse()

	if *list {
		for _, n := range adsim.ScenarioLibrary() {
			fmt.Println(n)
		}
		return
	}

	kind := adsim.Urban
	var prog *adsim.ScenarioProgram
	switch *scenario {
	case "urban":
	case "highway":
		kind = adsim.Highway
	default:
		p, err := adsim.ResolveScenarioProgram(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adpipe: %v\n", err)
			os.Exit(2)
		}
		prog = p
		switch *base {
		case "urban":
		case "highway":
			kind = adsim.Highway
		default:
			fmt.Fprintf(os.Stderr, "adpipe: unknown -base %q (want urban or highway)\n", *base)
			os.Exit(2)
		}
	}

	if *inflight < 1 {
		fmt.Fprintf(os.Stderr, "adpipe: -inflight must be >= 1\n")
		os.Exit(2)
	}
	if *anytime && *deadline <= 0 {
		fmt.Fprintf(os.Stderr, "adpipe: -anytime needs -deadline enforcement to exit from\n")
		os.Exit(2)
	}

	// An instance-scoped executor (not the mutable process default) owns the
	// DNN kernel workers for both inference stages.
	exec := adsim.NewDNNExecutor(*workers)

	cfg := adsim.DefaultPipelineConfig(kind)
	cfg.Scene.Width, cfg.Scene.Height = *width, *height
	cfg.SurveyFrames = *survey
	cfg.Detect.RunDNN = *dnn
	cfg.Track.RunDNN = *dnn
	cfg.Detect.Quantized = *quant
	cfg.Track.Quantized = *quant
	cfg.Detect.Executor = exec
	cfg.Track.Executor = exec
	if prog != nil {
		cfg.Scene = prog.Configure(cfg.Scene)
	}
	if *seed != 0 {
		cfg.Scene.Seed = *seed
	}
	// Static validation runs before any frame renders; warnings (silent
	// parameter coercions) surface here, hard errors below via the pipeline.
	if warns, err := cfg.Scene.Validate(); err == nil {
		for _, w := range warns {
			fmt.Fprintf(os.Stderr, "adpipe: warning: %s\n", w)
		}
	}

	var reg *adsim.TelemetryRegistry
	if *deadline > 0 {
		reg = adsim.NewTelemetryRegistry(*frames)
		cfg.Deadline = adsim.DeadlinePolicy{Enforce: true, FrameBudget: *deadline, Anytime: *anytime}
		cfg.Metrics = reg
	}
	faulting := *fault != ""
	if faulting {
		if prog != nil && len(prog.Faults) > 0 {
			fmt.Fprintf(os.Stderr, "adpipe: program %q carries its own fault rules; drop -fault\n", prog.Name)
			os.Exit(2)
		}
		sc, err := adsim.ParseFaultScenario(*fault, *faultSd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adpipe: %v\n", err)
			os.Exit(2)
		}
		inj, err := adsim.NewFaultInjector(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adpipe: %v\n", err)
			os.Exit(2)
		}
		cfg.Inject = inj.Stage
	} else if prog != nil && len(prog.Faults) > 0 {
		faulting = true
		inj, err := adsim.NewFaultInjector(adsim.FaultScenarioFromProgram(prog, *faultSd))
		if err != nil {
			fmt.Fprintf(os.Stderr, "adpipe: %v\n", err)
			os.Exit(2)
		}
		cfg.Inject = inj.Stage
	}

	var col *adsim.TelemetryCollector
	var mon *adsim.ConstraintMonitor
	switch *telem {
	case "json", "csv":
		col = adsim.NewTelemetryCollector(*frames)
		mon = adsim.NewConstraintMonitor(adsim.ConstraintMonitorConfig{})
		cfg.Telemetry = adsim.MultiSink(col, mon)
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "adpipe: unknown -telemetry format %q (want json, csv or off)\n", *telem)
		os.Exit(2)
	}

	p, err := adsim.NewPipelineFromConfig(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adpipe: %v\n", err)
		os.Exit(1)
	}

	var ts *adsim.TailScheduler
	var rungs []int
	if *tailTgt > 0 {
		rungs, err = tailLadder(*ladder, cfg.Detect.InputSize)
		if err == nil {
			ts, err = adsim.NewTailScheduler(adsim.TailConfig{
				Target:  *tailTgt,
				Ladder:  rungs,
				Metrics: reg,
			})
		}
		if err == nil && *inflight == 1 {
			err = p.AttachTail(ts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "adpipe: %v\n", err)
			os.Exit(2)
		}
	}

	var tw *pipeline.TraceWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adpipe: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tw = pipeline.NewTraceWriter(f)
	}

	e2e := adsim.NewDistribution(*frames)
	var e2eSamples []float64
	det := adsim.NewDistribution(*frames)
	tra := adsim.NewDistribution(*frames)
	loc := adsim.NewDistribution(*frames)
	tracked := 0
	degraded := 0
	faulted := 0

	wall := adsim.NewDistribution(*frames)

	// A scenario program gets a per-scenario constraint scorecard: every
	// delivered frame's end-to-end and per-stage latencies fold into one
	// replayable verdict.
	var card *adsim.ConstraintScorecard
	if prog != nil {
		card = adsim.NewConstraintScorecard(prog.Name, cfg.Scene.Seed, cfg.Scene.FPS)
	}

	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	record := func(i int, res adsim.FrameResult) {
		if card != nil {
			card.Observe(ms(res.Timing.E2E), map[string]float64{
				"DET": ms(res.Timing.Det), "TRA": ms(res.Timing.Tra), "LOC": ms(res.Timing.Loc),
			}, res.Degraded.Any())
		}
		e2e.Add(ms(res.Timing.E2E))
		e2eSamples = append(e2eSamples, ms(res.Timing.E2E))
		det.Add(ms(res.Timing.Det))
		tra.Add(ms(res.Timing.Tra))
		loc.Add(ms(res.Timing.Loc))
		if res.Pose.Tracked {
			tracked++
		}
		if res.Degraded.Any() {
			degraded++
		}
		if tw != nil {
			if err := tw.Write(pipeline.NewTraceRecord(res)); err != nil {
				fmt.Fprintf(os.Stderr, "adpipe: %v\n", err)
				os.Exit(1)
			}
		}
		if *verbose {
			fmt.Printf("frame %3d: %2d det, %2d tracks, pose z=%7.1f (tracked=%v reloc=%v), plan=%v, e2e=%.1fms, degraded=%v\n",
				i, len(res.Detections), len(res.Tracks), res.Pose.Pose.Z,
				res.Pose.Tracked, res.Pose.Relocalized, res.Plan.Decision, ms(res.Timing.E2E), res.Degraded)
		}
	}
	// Under fault injection, dropped frames and hard stage faults are part
	// of the scenario — count them and keep driving instead of exiting.
	frameErr := func(i int, err error) {
		if !faulting {
			fmt.Fprintf(os.Stderr, "adpipe: frame %d: %v\n", i, err)
			os.Exit(1)
		}
		if card != nil {
			card.ObserveError()
		}
		faulted++
		if *verbose {
			fmt.Printf("frame %3d: FAULT %v\n", i, err)
		}
	}

	if prog != nil {
		fmt.Printf("scenario program %q (seed %d), base world %s\n",
			prog.Name, cfg.Scene.Seed, scene.Kind(kind))
	}
	fmt.Printf("running %d %s frames at %dx%d (dnn=%v, survey=%d, inflight=%d, workers=%d)\n",
		*frames, scene.Kind(kind), *width, *height, *dnn, *survey, *inflight, exec.Workers())
	start := time.Now()
	if *inflight > 1 {
		r, err := adsim.NewRunner(p, adsim.RunnerOptions{InFlight: *inflight, Tail: ts})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adpipe: %v\n", err)
			os.Exit(1)
		}
		for res := range r.Run(*frames) {
			if res.Err != nil {
				frameErr(res.Frame.Index, res.Err)
				continue
			}
			wall.Add(ms(res.Wall))
			record(res.Frame.Index, res.FrameResult)
		}
	} else {
		for i := 0; i < *frames; i++ {
			res, err := p.Step()
			if err != nil {
				frameErr(i, err)
				continue
			}
			record(i, res)
		}
		p.Drain() // wait out any late attempts abandoned by deadline misses
	}
	elapsed := time.Since(start)

	fmt.Printf("\nstage latency (ms, native execution on this machine):\n")
	fmt.Printf("  DET  %s\n", det.Summary())
	fmt.Printf("  TRA  %s\n", tra.Summary())
	fmt.Printf("  LOC  %s\n", loc.Summary())
	fmt.Printf("  E2E  %s\n", e2e.Summary())
	if wall.N() > 0 {
		fmt.Printf("  WALL %s (admission to delivery under pipelining)\n", wall.Summary())
	}
	fmt.Printf("throughput %.1f frames/s (%d frames in %v)\n",
		float64(*frames)/elapsed.Seconds(), *frames, elapsed.Round(time.Millisecond))
	fmt.Printf("localized %d/%d frames; relocalizations=%d, loop closures=%d, map=%v\n",
		tracked, *frames, p.Localizer().Relocalizations(),
		p.Localizer().LoopClosures(), p.Localizer().Map())

	if card != nil {
		fmt.Printf("\nscenario scorecard:\n%s", card.Report())
	}

	if *deadline > 0 {
		fmt.Printf("\ndeadline enforcement (frame budget %v):\n", *deadline)
		fmt.Printf("  degraded frames  %d/%d\n", degraded, *frames)
		if faulting {
			fmt.Printf("  faulted frames   %d/%d (dropped or hard stage faults)\n", faulted, *frames)
		}
		fmt.Printf("  budget misses    %d total\n", reg.Counter("deadline/miss").Value())
		for _, name := range reg.CounterNames() {
			if strings.HasPrefix(name, "deadline/miss/") {
				if v := reg.Counter(name).Value(); v > 0 {
					fmt.Printf("    %-14s %d\n", strings.TrimPrefix(name, "deadline/miss/"), v)
				}
			}
		}
	} else if faulting {
		fmt.Printf("faulted frames %d/%d (dropped or hard stage faults)\n", faulted, *frames)
	}

	if ts != nil {
		fmt.Printf("\ntail scheduler (target %v):\n", *tailTgt)
		fmt.Printf("  window      now %d, min %d (ceiling %d)\n",
			ts.WindowLimit(), ts.MinWindowLimit(), *inflight)
		fmt.Printf("  resolution  now %d, deepest rung %d of ladder %v\n",
			ts.InputSize(), ts.MaxRungDepth(), rungs)
		fmt.Printf("  rolling tail monitor:\n")
		for _, line := range strings.Split(strings.TrimRight(ts.Monitor().Snapshot().String(), "\n"), "\n") {
			fmt.Printf("    %s\n", line)
		}
	}

	if col != nil {
		fmt.Printf("\nper-stage telemetry (queue wait vs execute):\n")
		var werr error
		switch *telem {
		case "json":
			werr = col.WriteJSON(os.Stdout)
		case "csv":
			werr = col.WriteCSV(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "adpipe: %v\n", werr)
			os.Exit(1)
		}
		fmt.Printf("\nlive constraint verdict (rolling window):\n%s", mon.Snapshot())
	}

	if tw != nil {
		fmt.Printf("wrote %d trace records to %s\n", tw.Count(), *trace)
	}
	if *hist && len(e2eSamples) > 0 {
		h := stats.NewHistogram(0, e2e.Max()*1.05, 20)
		for _, v := range e2eSamples {
			h.Add(v)
		}
		fmt.Printf("\nend-to-end latency histogram (ms):\n%s", h.Render(48))
	}
}

// tailLadder parses -ladder, or derives a short descending ladder from the
// detector's input size: each rung three quarters of the last, floored to a
// multiple of 16, never below 32. The scheduler validates the result.
func tailLadder(spec string, base int) ([]int, error) {
	if spec == "" {
		rungs := []int{base}
		for last := base; ; {
			next := last * 3 / 4 / 16 * 16
			if next < 32 || next >= last {
				break
			}
			rungs = append(rungs, next)
			last = next
		}
		return rungs, nil
	}
	parts := strings.Split(spec, ",")
	rungs := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -ladder rung %q", part)
		}
		rungs = append(rungs, v)
	}
	return rungs, nil
}
