// Command admap plays the paper's map-provider role: it surveys a
// synthetic scenario into a prior map, saves/loads the compact on-disk
// format, shards a map into a tiled directory for cache-bounded serving,
// reports storage density (the basis of the paper's 41 TB US-map
// constraint), and verifies a saved map by localizing a replay against it.
//
// Usage:
//
//	admap -build map.adm -scenario urban -frames 120    # survey and save
//	admap -info map.adm                                  # inspect
//	admap -shard mapdir -from map.adm -tile 64           # split into tiles
//	admap -shard mapdir -scenario urban -frames 120      # survey + shard
//	admap -shardinfo mapdir                              # inspect shards
//	admap -verify map.adm -scenario urban -frames 60     # localize a replay
//	admap -verify mapdir -cache-budget 65536             # ...through the LRU cache
package main

import (
	"flag"
	"fmt"
	"os"

	"adsim/internal/scene"
	"adsim/internal/slam"
)

func main() {
	var (
		build     = flag.String("build", "", "survey a scenario and write the map to this file")
		info      = flag.String("info", "", "print statistics for a saved map")
		shard     = flag.String("shard", "", "write a tiled shard directory (source: -from or a survey)")
		shardinfo = flag.String("shardinfo", "", "print statistics for a shard directory")
		verify    = flag.String("verify", "", "localize a scenario replay against a saved map file or shard directory")
		from      = flag.String("from", "", "source .adm map for -shard (default: survey -scenario)")
		tile      = flag.Float64("tile", slam.DefaultTilePitch, "tile pitch in meters for -shard")
		budget    = flag.Int64("cache-budget", 0, "shard cache budget in bytes for -verify on a directory (0 = unlimited)")
		scenario  = flag.String("scenario", "urban", "scenario kind: urban or highway")
		frames    = flag.Int("frames", 120, "frames to survey / verify")
		width     = flag.Int("width", 640, "frame width")
		height    = flag.Int("height", 320, "frame height")
		seed      = flag.Int64("seed", 1, "scenario seed")
	)
	flag.Parse()

	switch {
	case *build != "":
		if err := runBuild(*build, *scenario, *frames, *width, *height, *seed); err != nil {
			fatal(err)
		}
	case *info != "":
		if err := runInfo(*info); err != nil {
			fatal(err)
		}
	case *shard != "":
		if err := runShard(*shard, *from, *tile, *scenario, *frames, *width, *height, *seed); err != nil {
			fatal(err)
		}
	case *shardinfo != "":
		if err := runShardInfo(*shardinfo); err != nil {
			fatal(err)
		}
	case *verify != "":
		if err := runVerify(*verify, *scenario, *frames, *width, *height, *seed, *budget); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "admap: %v\n", err)
	os.Exit(1)
}

func sceneConfig(kind string, frames, w, h int, seed int64) (scene.Config, error) {
	cfg := scene.DefaultConfig(scene.Urban)
	switch kind {
	case "urban":
	case "highway":
		cfg = scene.DefaultConfig(scene.Highway)
	default:
		return cfg, fmt.Errorf("unknown scenario %q", kind)
	}
	cfg.Width, cfg.Height = w, h
	cfg.Seed = seed
	return cfg, nil
}

// usTB extrapolates a serialized byte density (bytes per meter of road) to
// the US public road network, in TB — the same basis everywhere: build,
// shard and the storage experiment all quote one number.
func usTB(bytes int64, meters float64) float64 {
	return float64(bytes) / meters * 6.68e9 / 1e12
}

// surveyMap surveys a scenario into a fresh prior map.
func surveyMap(kind string, frames, w, h int, seed int64) (*slam.PriorMap, float64, error) {
	cfg, err := sceneConfig(kind, frames, w, h, seed)
	if err != nil {
		return nil, 0, err
	}
	gen, err := scene.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	eng, err := slam.NewEngine(slam.DefaultConfig(), slam.NewPriorMap())
	if err != nil {
		return nil, 0, err
	}
	var meters float64
	for i := 0; i < frames; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
		meters = f.EgoPose.Z
	}
	return eng.Map(), meters, nil
}

func runBuild(path, kind string, frames, w, h int, seed int64) error {
	m, meters, err := surveyMap(kind, frames, w, h, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := m.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("surveyed %.0f m (%d frames) -> %v\n", meters, frames, m)
	fmt.Printf("wrote %s: %d bytes (%.1f KB/m; US extrapolation %.1f TB)\n",
		path, n, float64(n)/meters/1024, usTB(n, meters))
	return nil
}

func runInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := slam.ReadPriorMap(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %v\n", path, m)
	if m.Len() == 0 {
		return nil
	}
	all := m.All()
	first, last := all[0], all[len(all)-1]
	features := 0
	for _, kf := range all {
		features += len(kf.Descriptors)
	}
	fmt.Printf("coverage  z = %.1f .. %.1f m\n", first.Pose.Z, last.Pose.Z)
	fmt.Printf("features  %d total (%.0f per keyframe)\n",
		features, float64(features)/float64(m.Len()))
	fmt.Printf("density   %d serialized bytes (%d resident)\n",
		m.SerializedBytes(), m.StorageBytes())
	return nil
}

func runShard(dir, from string, pitch float64, kind string, frames, w, h int, seed int64) error {
	var m *slam.PriorMap
	if from != "" {
		f, err := os.Open(from)
		if err != nil {
			return err
		}
		defer f.Close()
		if m, err = slam.ReadPriorMap(f); err != nil {
			return err
		}
	} else {
		var err error
		if m, _, err = surveyMap(kind, frames, w, h, seed); err != nil {
			return err
		}
	}
	if m.Len() == 0 {
		return fmt.Errorf("refusing to shard an empty map")
	}
	idx, err := slam.WriteShards(m, dir, pitch)
	if err != nil {
		return err
	}
	printIndex(dir, idx)
	return nil
}

func runShardInfo(dir string) error {
	idx, err := slam.ReadShardIndex(dir)
	if err != nil {
		return err
	}
	printIndex(dir, idx)
	for _, t := range idx.Tiles {
		fmt.Printf("  %s  tile %4d  z = %8.1f .. %8.1f m  %4d keyframes  %7d B\n",
			t.File, t.Tile, t.ZMin, t.ZMax, t.Keyframes, t.Bytes)
	}
	return nil
}

func printIndex(dir string, idx *slam.ShardIndex) {
	fmt.Printf("%s: %d tiles (%.0f m pitch), %d keyframes, %d bytes\n",
		dir, len(idx.Tiles), idx.TilePitch, idx.Keyframes, idx.Bytes)
	if len(idx.Tiles) > 0 {
		span := idx.Tiles[len(idx.Tiles)-1].ZMax - idx.Tiles[0].ZMin
		if span > 0 {
			fmt.Printf("coverage  z = %.1f .. %.1f m (%.1f KB/m; US extrapolation %.1f TB)\n",
				idx.Tiles[0].ZMin, idx.Tiles[len(idx.Tiles)-1].ZMax,
				float64(idx.Bytes)/span/1024, usTB(idx.Bytes, span))
		}
	}
}

// openStore opens path as either a monolithic .adm file or a shard
// directory (served through the byte-budgeted LRU cache).
func openStore(path string, budget int64) (slam.MapStore, *slam.ShardStore, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, nil, err
	}
	if fi.IsDir() {
		s, err := slam.OpenShardStore(path, slam.ShardStoreOptions{CacheBudget: budget, Prefetch: true})
		if err != nil {
			return nil, nil, err
		}
		return s, s, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	m, err := slam.ReadPriorMap(f)
	if err != nil {
		return nil, nil, err
	}
	return m, nil, nil
}

func runVerify(path, kind string, frames, w, h int, seed, budget int64) error {
	store, shards, err := openStore(path, budget)
	if err != nil {
		return err
	}
	if shards != nil {
		defer shards.Close()
	}
	cfg, err := sceneConfig(kind, frames, w, h, seed)
	if err != nil {
		return err
	}
	gen, err := scene.New(cfg)
	if err != nil {
		return err
	}
	eng, err := slam.NewEngineStore(slam.DefaultConfig(), store)
	if err != nil {
		return err
	}
	tracked, reloc := 0, 0
	var worst float64
	for i := 0; i < frames; i++ {
		fr := gen.Step()
		est := eng.Localize(fr.Image)
		if est.Relocalized {
			reloc++
		}
		if est.Tracked {
			tracked++
			if e := est.Pose.Z - fr.EgoPose.Z; e > worst || -e > worst {
				if e < 0 {
					e = -e
				}
				worst = e
			}
		}
	}
	fmt.Printf("localized %d/%d frames (worst error %.2f m, %d relocalization frames)\n",
		tracked, frames, worst, reloc)
	if shards != nil {
		st := shards.CacheStats()
		fmt.Printf("shard cache: %d hits, %d misses, %d prefetches, %d evictions, %d/%d tiles resident (%d B)\n",
			st.Hits, st.Misses, st.Prefetches, st.Evictions,
			st.ResidentTiles, len(shards.Index().Tiles), st.ResidentBytes)
		if err := shards.Err(); err != nil {
			return err
		}
	}
	if tracked < frames/2 {
		return fmt.Errorf("map verification failed: tracked %d/%d", tracked, frames)
	}
	return nil
}
