// Command admap plays the paper's map-provider role: it surveys a
// synthetic scenario into a prior map, saves/loads the compact on-disk
// format, reports storage density (the basis of the paper's 41 TB US-map
// constraint), and verifies a saved map by localizing a replay against it.
//
// Usage:
//
//	admap -build map.adm -scenario urban -frames 120   # survey and save
//	admap -info map.adm                                 # inspect
//	admap -verify map.adm -scenario urban -frames 60    # localize a replay
package main

import (
	"flag"
	"fmt"
	"os"

	"adsim/internal/scene"
	"adsim/internal/slam"
)

func main() {
	var (
		build    = flag.String("build", "", "survey a scenario and write the map to this file")
		info     = flag.String("info", "", "print statistics for a saved map")
		verify   = flag.String("verify", "", "localize a scenario replay against a saved map")
		scenario = flag.String("scenario", "urban", "scenario kind: urban or highway")
		frames   = flag.Int("frames", 120, "frames to survey / verify")
		width    = flag.Int("width", 640, "frame width")
		height   = flag.Int("height", 320, "frame height")
		seed     = flag.Int64("seed", 1, "scenario seed")
	)
	flag.Parse()

	switch {
	case *build != "":
		if err := runBuild(*build, *scenario, *frames, *width, *height, *seed); err != nil {
			fatal(err)
		}
	case *info != "":
		if err := runInfo(*info); err != nil {
			fatal(err)
		}
	case *verify != "":
		if err := runVerify(*verify, *scenario, *frames, *width, *height, *seed); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "admap: %v\n", err)
	os.Exit(1)
}

func sceneConfig(kind string, frames, w, h int, seed int64) (scene.Config, error) {
	cfg := scene.DefaultConfig(scene.Urban)
	switch kind {
	case "urban":
	case "highway":
		cfg = scene.DefaultConfig(scene.Highway)
	default:
		return cfg, fmt.Errorf("unknown scenario %q", kind)
	}
	cfg.Width, cfg.Height = w, h
	cfg.Seed = seed
	return cfg, nil
}

func runBuild(path, kind string, frames, w, h int, seed int64) error {
	cfg, err := sceneConfig(kind, frames, w, h, seed)
	if err != nil {
		return err
	}
	gen, err := scene.New(cfg)
	if err != nil {
		return err
	}
	eng, err := slam.NewEngine(slam.DefaultConfig(), slam.NewPriorMap())
	if err != nil {
		return err
	}
	var meters float64
	for i := 0; i < frames; i++ {
		f := gen.Step()
		eng.Survey(f.Image, f.EgoPose)
		meters = f.EgoPose.Z
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := eng.Map().WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("surveyed %.0f m (%d frames) -> %v\n", meters, frames, eng.Map())
	fmt.Printf("wrote %s: %d bytes (%.1f KB/m; US extrapolation %.1f TB)\n",
		path, n, float64(n)/meters/1024, float64(n)/meters*6.68e9/1e12)
	return nil
}

func runInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := slam.ReadPriorMap(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %v\n", path, m)
	if m.Len() == 0 {
		return nil
	}
	first, last := m.All()[0], m.All()[m.Len()-1]
	features := 0
	for _, kf := range m.All() {
		features += len(kf.Descriptors)
	}
	fmt.Printf("coverage  z = %.1f .. %.1f m\n", first.Pose.Z, last.Pose.Z)
	fmt.Printf("features  %d total (%.0f per keyframe)\n",
		features, float64(features)/float64(m.Len()))
	return nil
}

func runVerify(path, kind string, frames, w, h int, seed int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := slam.ReadPriorMap(f)
	if err != nil {
		return err
	}
	cfg, err := sceneConfig(kind, frames, w, h, seed)
	if err != nil {
		return err
	}
	gen, err := scene.New(cfg)
	if err != nil {
		return err
	}
	eng, err := slam.NewEngine(slam.DefaultConfig(), m)
	if err != nil {
		return err
	}
	tracked, reloc := 0, 0
	var worst float64
	for i := 0; i < frames; i++ {
		fr := gen.Step()
		est := eng.Localize(fr.Image)
		if est.Relocalized {
			reloc++
		}
		if est.Tracked {
			tracked++
			if e := est.Pose.Z - fr.EgoPose.Z; e > worst || -e > worst {
				if e < 0 {
					e = -e
				}
				worst = e
			}
		}
	}
	fmt.Printf("localized %d/%d frames (worst error %.2f m, %d relocalization frames)\n",
		tracked, frames, worst, reloc)
	if tracked < frames/2 {
		return fmt.Errorf("map verification failed: tracked %d/%d", tracked, frames)
	}
	return nil
}
