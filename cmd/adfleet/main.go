// Command adfleet multiplexes N vehicle streams onto shared engines: every
// vehicle runs the full native pipeline on its own seeded scenario, with
// DET/TRA inference gathered through one shared batching executor and the
// prior map served from one shared store. It prints the fleet verdict —
// fleet-level P99.99, sustained vehicles/s, and a per-vehicle scorecard.
//
// Usage:
//
//	adfleet -vehicles 4 -frames 50
//	adfleet -vehicles 8 -frames 100 -scenario highway -inflight 4
//	adfleet -vehicles 4 -frames 200 -deadline 100ms -fault 'DET:delay=30ms:every=5' -fault-vehicle 1
//	adfleet -vehicles 2 -frames 50 -batch=false -shared-map=false   # fully private resources
//	adfleet -vehicles 4 -frames 100 -assign '1=cut-in,3=blackout'   # per-vehicle scenario programs
//	adfleet -vehicles 8 -frames 200 -phase -admission               # capacity mode: phase-locked batching + budget shedding
//	adfleet -vehicles 4 -frames 100 -add-at 50 -remove-at 100 -remove-vehicle 1   # runtime churn
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adsim"
	"adsim/internal/scene"
	"adsim/internal/slam"
)

func main() {
	var (
		vehicles = flag.Int("vehicles", 4, "vehicle streams to multiplex")
		frames   = flag.Int("frames", 50, "frames to process per vehicle")
		scenario = flag.String("scenario", "urban", "template scenario kind every vehicle drives: urban or highway")
		assign   = flag.String("assign", "", "per-vehicle scenario programs as comma-separated INDEX=PROGRAM pairs (library name or .adsc path), e.g. '1=cut-in,3=blackout'; assigned vehicles keep their derived seed and the program's fault rules")
		width    = flag.Int("width", 512, "frame width")
		height   = flag.Int("height", 256, "frame height")
		survey   = flag.Int("survey", 60, "prior-map survey frames")
		dnn      = flag.Bool("dnn", true, "execute the native DNNs (slower, exercises the batching seam)")
		quant    = flag.Bool("quantized", false, "run the native DNNs through the int8 quantized inference path")
		inflight = flag.Int("inflight", 3, "frames in flight per vehicle Runner")
		workers  = flag.Int("workers", 0, "goroutines per DNN conv/FC kernel in the shared executor (0 = number of CPUs)")
		batch    = flag.Bool("batch", true, "gather overlapping same-shape DNN calls across vehicles into one batched GEMM")
		shared   = flag.Bool("shared-map", true, "serve all vehicles from one shared prior-map store (per-vehicle private overlays)")
		seed     = flag.Int64("seed", 1, "base scenario seed; vehicle i drives seed+i")
		deadline = flag.Duration("deadline", 0, "enforce per-stage deadline budgets split from this frame deadline (0 disables)")
		admit    = flag.Bool("admission", false, "frame-budget admission control: shed whole vehicle streams (lowest priority first) when the fleet P99.99 nears the budget, readmit with hysteresis when it subsides")
		admitTgt = flag.Duration("admission-target", 0, "admission frame budget the controller steers the fleet tail under (0 = the paper's 100ms; implies -admission)")
		maxVeh   = flag.Int("max-vehicles", 0, "cap on concurrently admitted vehicle streams, enforced at registration and respected by readmits (0 = uncapped; implies -admission)")
		phase    = flag.Bool("phase", false, "phase-lock co-resident vehicles' frame admission so the shared executor gathers deeper same-shape DNN batches")
		addAt    = flag.Int("add-at", 0, "add one vehicle at runtime once this many total frames are delivered (0 disables)")
		removeAt = flag.Int("remove-at", 0, "remove vehicle -remove-vehicle at runtime once this many total frames are delivered (0 disables)")
		removeV  = flag.Int("remove-vehicle", 0, "vehicle index removed by -remove-at")
		fault    = flag.String("fault", "", "seeded fault scenario injected into ONE vehicle, e.g. 'DET:delay=30ms:every=5'")
		faultVeh = flag.Int("fault-vehicle", 0, "vehicle index the -fault scenario is injected into")
		faultSd  = flag.Int64("fault-seed", 1, "seed for the fault scenario's probabilistic rules")
		verbose  = flag.Bool("v", false, "print per-frame results")
	)
	flag.Parse()

	fail := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "adfleet: "+format+"\n", args...)
		os.Exit(code)
	}

	kind := adsim.Urban
	switch *scenario {
	case "urban":
	case "highway":
		kind = adsim.Highway
	default:
		fail(2, "unknown scenario %q", *scenario)
	}
	if *vehicles < 1 {
		fail(2, "-vehicles must be >= 1")
	}
	if *fault != "" && (*faultVeh < 0 || *faultVeh >= *vehicles) {
		fail(2, "-fault-vehicle %d out of range [0,%d)", *faultVeh, *vehicles)
	}
	if *removeAt > 0 && (*removeV < 0 || *removeV >= *vehicles) {
		fail(2, "-remove-vehicle %d out of range [0,%d)", *removeV, *vehicles)
	}

	cfg := adsim.DefaultPipelineConfig(kind)
	cfg.Scene.Width, cfg.Scene.Height = *width, *height
	cfg.Scene.Seed = *seed
	cfg.SurveyFrames = *survey
	cfg.Detect.RunDNN = *dnn
	cfg.Track.RunDNN = *dnn
	cfg.Detect.Quantized = *quant
	cfg.Track.Quantized = *quant
	if *deadline > 0 {
		cfg.Deadline = adsim.DeadlinePolicy{Enforce: true, FrameBudget: *deadline}
	}

	var exec *adsim.DNNExecutor
	if *batch {
		exec = adsim.NewBatchDNNExecutor(*workers)
	} else {
		exec = adsim.NewDNNExecutor(*workers)
	}

	fc := adsim.FleetConfig{
		Vehicles:  *vehicles,
		Config:    cfg,
		InFlight:  *inflight,
		Executor:  exec,
		PhaseLock: *phase,
	}
	if *admit || *admitTgt > 0 || *maxVeh > 0 {
		fc.Admission = &adsim.AdmissionConfig{
			Target:      *admitTgt,
			MaxAdmitted: *maxVeh,
		}
	}
	if *shared && *survey > 0 {
		// Survey the shared store once; every vehicle localizes through a
		// private overlay view of it instead of surveying its own copy.
		base := slam.NewPriorMap()
		eng, err := slam.NewEngine(cfg.SLAM, base)
		if err != nil {
			fail(1, "%v", err)
		}
		gen, err := scene.New(cfg.Scene)
		if err != nil {
			fail(1, "%v", err)
		}
		for i := 0; i < *survey; i++ {
			f := gen.Step()
			eng.Survey(f.Image, f.EgoPose)
		}
		fc.SharedMap = base
		fc.Config.SurveyFrames = 0
	}
	faulting := *fault != ""
	if faulting {
		sc, err := adsim.ParseFaultScenario(*fault, *faultSd)
		if err != nil {
			fail(2, "%v", err)
		}
		inj, err := adsim.NewFaultInjector(sc)
		if err != nil {
			fail(2, "%v", err)
		}
		fc.Injects = map[int]func(string, int) (time.Duration, error){*faultVeh: inj.Stage}
	}
	if *assign != "" {
		fc.Scenes = map[int]adsim.SceneConfig{}
		for _, pair := range strings.Split(*assign, ",") {
			idxStr, ref, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				fail(2, "bad -assign entry %q (want INDEX=PROGRAM)", pair)
			}
			idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
			if err != nil || idx < 0 || idx >= *vehicles {
				fail(2, "bad -assign vehicle index %q (fleet has %d vehicles)", idxStr, *vehicles)
			}
			if _, dup := fc.Scenes[idx]; dup {
				fail(2, "-assign lists vehicle %d twice", idx)
			}
			prog, err := adsim.ResolveScenarioProgram(strings.TrimSpace(ref))
			if err != nil {
				fail(2, "%v", err)
			}
			sc := prog.Configure(cfg.Scene)
			sc.Seed = 0 // keep the fleet's per-vehicle seed derivation (base seed + index)
			fc.Scenes[idx] = sc
			if len(prog.Faults) > 0 {
				if _, dup := fc.Injects[idx]; dup {
					fail(2, "vehicle %d has both -fault and program %q fault rules", idx, prog.Name)
				}
				inj, err := adsim.NewFaultInjector(adsim.FaultScenarioFromProgram(prog, *faultSd))
				if err != nil {
					fail(2, "%v", err)
				}
				if fc.Injects == nil {
					fc.Injects = map[int]func(string, int) (time.Duration, error){}
				}
				fc.Injects[idx] = inj.Stage
				faulting = true
			}
		}
	}

	f, err := adsim.NewFleet(fc)
	if err != nil {
		fail(1, "%v", err)
	}

	fmt.Printf("running %d vehicles x %d %s frames at %dx%d (dnn=%v, batch=%v, shared-map=%v, inflight=%d, workers=%d, phase=%v, admission=%v)\n",
		*vehicles, *frames, *scenario, *width, *height, *dnn,
		exec.Batching(), fc.SharedMap != nil, *inflight, exec.Workers(),
		*phase, fc.Admission != nil)

	// Churn triggers are keyed to total delivered frames so they land
	// mid-run at any fleet size; the churn goroutine also unblocks on run
	// end in case a trigger is set past the run's total frame count.
	var mu sync.Mutex
	faulted := 0
	var delivered atomic.Int64
	addSig, removeSig := make(chan struct{}), make(chan struct{})
	var addOnce, removeOnce sync.Once
	runDone, churnDone := make(chan struct{}), make(chan struct{})
	if err := f.Start(*frames, func(v int, res adsim.RunnerResult) {
		n := delivered.Add(1)
		if *addAt > 0 && n >= int64(*addAt) {
			addOnce.Do(func() { close(addSig) })
		}
		if *removeAt > 0 && n >= int64(*removeAt) {
			removeOnce.Do(func() { close(removeSig) })
		}
		mu.Lock()
		defer mu.Unlock()
		if res.Err != nil {
			if !faulting {
				fail(1, "vehicle %d frame %d: %v", v, res.Frame.Index, res.Err)
			}
			faulted++
			if *verbose {
				fmt.Printf("vehicle %d frame %3d: FAULT %v\n", v, res.Frame.Index, res.Err)
			}
			return
		}
		if *verbose {
			fmt.Printf("vehicle %d frame %3d: %2d det, %2d tracks, pose z=%7.1f, plan=%v, wall=%.1fms, degraded=%v\n",
				v, res.Frame.Index, len(res.Detections), len(res.Tracks),
				res.Pose.Pose.Z, res.Plan.Decision, float64(res.Wall)/1e6, res.Degraded)
		}
	}); err != nil {
		fail(1, "%v", err)
	}
	addedID := -1
	go func() {
		defer close(churnDone)
		if *addAt > 0 {
			select {
			case <-addSig:
				id, err := f.AddVehicle()
				if err != nil {
					fail(1, "add vehicle: %v", err)
				}
				addedID = id
			case <-runDone:
				return
			}
		}
		if *removeAt > 0 {
			select {
			case <-removeSig:
				if err := f.RemoveVehicle(*removeV); err != nil {
					fail(1, "remove vehicle %d: %v", *removeV, err)
				}
			case <-runDone:
			}
		}
	}()
	rep := f.Wait()
	close(runDone)
	<-churnDone

	fmt.Printf("\n%s", rep)
	if addedID >= 0 {
		fmt.Printf("churn: vehicle %d added at runtime\n", addedID)
	}
	if batches, calls := f.Executor().GatherStats(); batches > 0 {
		fmt.Printf("gather: %d DNN forwards in %d batches (mean depth %.2f)\n",
			calls, batches, float64(calls)/float64(batches))
	}
	if *verbose {
		for _, e := range rep.Admission {
			fmt.Printf("admission %s\n", e)
		}
	}
	if *fault != "" {
		fmt.Printf("faulted frames %d (vehicle %d under %q)\n", faulted, *faultVeh, *fault)
	} else if faulting {
		fmt.Printf("faulted frames %d (under assigned program fault rules)\n", faulted)
	}
}
