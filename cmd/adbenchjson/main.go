// Command adbenchjson converts `go test -bench` output on stdin into the
// repo's schema'd benchmark-trajectory format (BENCH_<n>.json; see
// internal/benchjson). An optional baseline measurement — the pre-change
// number the run is compared against — is embedded in the same file so the
// speedup claim stays auditable.
//
// It is also the repo's regression gate: -prev loads an earlier trajectory
// file and prints per-benchmark deltas, and -gate fails the run when a
// shared benchmark's ns/op regressed beyond -gate-threshold without an
// -explain waiver.
//
// Usage:
//
//	go test -bench . ./... | adbenchjson -o BENCH_1.json \
//	    -baseline-name BenchmarkRunner -baseline-ns 26051823 \
//	    -baseline-metric 'frames/s=38.39' -baseline-ref 'pre-PR6 @0e0c394'
//	go test -bench . | adbenchjson -o BENCH_2.json -prev BENCH_1.json
//	adbenchjson -in BENCH_2.json -prev BENCH_1.json -gate \
//	    -explain 'BenchmarkRunner=now shares the executor with the fleet'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"adsim/internal/benchjson"
)

type metricFlags map[string]float64

func (m metricFlags) String() string { return fmt.Sprint(map[string]float64(m)) }

func (m metricFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want unit=value, got %q", s)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	m[k] = f
	return nil
}

type explainFlags map[string]string

func (m explainFlags) String() string { return fmt.Sprint(map[string]string(m)) }

func (m explainFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" || v == "" {
		return fmt.Errorf("want BenchmarkName=reason, got %q", s)
	}
	m[k] = v
	return nil
}

func main() {
	var (
		out         = flag.String("o", "", "output file (default stdout; '-in' mode defaults to none)")
		in          = flag.String("in", "", "load an existing report file instead of parsing stdin")
		prev        = flag.String("prev", "", "earlier trajectory file to print per-benchmark deltas against")
		gate        = flag.Bool("gate", false, "with -prev: exit 1 on unexplained ns/op regressions beyond -gate-threshold")
		gateThresh  = flag.Float64("gate-threshold", 1.5, "new/old ns/op ratio above which a shared benchmark counts as regressed")
		baseName    = flag.String("baseline-name", "", "benchmark name the baseline refers to")
		baseNs      = flag.Float64("baseline-ns", 0, "baseline ns/op")
		baseRef     = flag.String("baseline-ref", "", "provenance of the baseline measurement")
		baseMetrics = metricFlags{}
		explained   = explainFlags{}
	)
	flag.Var(baseMetrics, "baseline-metric", "baseline metric as unit=value (repeatable)")
	flag.Var(explained, "explain", "waive one benchmark's regression as BenchmarkName=reason (repeatable)")
	flag.Parse()

	var rep *benchjson.Report
	var err error
	if *in != "" {
		rep, err = decodeFile(*in)
		if err != nil {
			fatal(err)
		}
	} else {
		rep, err = benchjson.Parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		rep.Created = time.Now().UTC().Format(time.RFC3339)
		if *baseName != "" {
			rep.SetBaseline(benchjson.Baseline{
				Ref:     *baseRef,
				Name:    *baseName,
				NsPerOp: *baseNs,
				Metrics: baseMetrics,
			})
		}
		if err := rep.Validate(); err != nil {
			fatal(err)
		}
	}
	if *out != "" || *in == "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := rep.Encode(w); err != nil {
			fatal(err)
		}
	}
	if rep.SpeedupVsBaseline > 0 {
		fmt.Fprintf(os.Stderr, "%s: %.2fx vs baseline (%s)\n",
			rep.Baseline.Name, rep.SpeedupVsBaseline, rep.Baseline.Ref)
	}
	if *prev == "" {
		if *gate {
			fatal(fmt.Errorf("-gate needs -prev"))
		}
		return
	}

	prevRep, err := decodeFile(*prev)
	if err != nil {
		fatal(err)
	}
	deltas := benchjson.Compare(prevRep, rep)
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "no shared benchmarks with %s\n", *prev)
		return
	}
	fmt.Fprintf(os.Stderr, "deltas vs %s:\n", *prev)
	for _, d := range deltas {
		fmt.Fprintf(os.Stderr, "  %s\n", d)
	}
	regs := benchjson.Regressions(deltas, *gateThresh, explained)
	for _, d := range deltas {
		if why, ok := explained[d.Name]; ok && d.Ratio > *gateThresh {
			fmt.Fprintf(os.Stderr, "  %s: regression waived: %s\n", d.Name, why)
		}
	}
	if *gate && len(regs) > 0 {
		for _, d := range regs {
			fmt.Fprintf(os.Stderr, "REGRESSION %s (threshold %.2fx; waive with -explain '%s=reason')\n",
				d, *gateThresh, d.Name)
		}
		os.Exit(1)
	}
}

func decodeFile(path string) (*benchjson.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchjson.Decode(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adbenchjson:", err)
	os.Exit(1)
}
