// Command adbenchjson converts `go test -bench` output on stdin into the
// repo's schema'd benchmark-trajectory format (BENCH_<n>.json; see
// internal/benchjson). An optional baseline measurement — the pre-change
// number the run is compared against — is embedded in the same file so the
// speedup claim stays auditable.
//
// Usage:
//
//	go test -bench . ./... | adbenchjson -o BENCH_1.json \
//	    -baseline-name BenchmarkRunner -baseline-ns 26051823 \
//	    -baseline-metric 'frames/s=38.39' -baseline-ref 'pre-PR6 @0e0c394'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"adsim/internal/benchjson"
)

type metricFlags map[string]float64

func (m metricFlags) String() string { return fmt.Sprint(map[string]float64(m)) }

func (m metricFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want unit=value, got %q", s)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	m[k] = f
	return nil
}

func main() {
	var (
		out         = flag.String("o", "", "output file (default stdout)")
		baseName    = flag.String("baseline-name", "", "benchmark name the baseline refers to")
		baseNs      = flag.Float64("baseline-ns", 0, "baseline ns/op")
		baseRef     = flag.String("baseline-ref", "", "provenance of the baseline measurement")
		baseMetrics = metricFlags{}
	)
	flag.Var(baseMetrics, "baseline-metric", "baseline metric as unit=value (repeatable)")
	flag.Parse()

	rep, err := benchjson.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	rep.Created = time.Now().UTC().Format(time.RFC3339)
	if *baseName != "" {
		rep.SetBaseline(benchjson.Baseline{
			Ref:     *baseRef,
			Name:    *baseName,
			NsPerOp: *baseNs,
			Metrics: baseMetrics,
		})
	}
	if err := rep.Validate(); err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.Encode(w); err != nil {
		fatal(err)
	}
	if rep.SpeedupVsBaseline > 0 {
		fmt.Fprintf(os.Stderr, "%s: %.2fx vs baseline (%s)\n",
			rep.Baseline.Name, rep.SpeedupVsBaseline, rep.Baseline.Ref)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adbenchjson:", err)
	os.Exit(1)
}
